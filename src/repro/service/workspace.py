"""Multi-session service layer over a single DataSpread engine.

A :class:`Workspace` owns one :class:`~repro.engine.dataspread.DataSpread`
and hands out :class:`Session` objects — the unit a client (a spreadsheet
tab, an API connection) holds.  Sessions share the committed grid but are
isolated in what they have *not* yet committed:

* **Single-writer transactions.**  At most one session's write transaction
  (``session.batch()`` / ``session.savepoint()``) is open at a time — the
  SQLite model.  While session A's transaction is open, session B's single
  edits still succeed: they run *autonomously* (the engine parks A's
  buffered writes, commits B's edit, resumes A), so short edits never wait
  on a long transaction.  Cells A's transaction has uncommitted work on
  are *write-locked* — B editing one raises
  :class:`~repro.errors.TransactionBusyError` (the database row-lock
  model) rather than racing A's commit flush.  B's own transaction — and
  any structural edit, which would shift the coordinate space under A's
  buffered writes — raise :class:`~repro.errors.TransactionBusyError`
  as well.

* **Read-committed visibility.**  A transaction's buffered writes are
  visible only to the session that owns it.  Other sessions (and the async
  scheduler draining between edits) read the last committed values.

* **Real savepoints.**  ``session.savepoint()`` captures an undo boundary
  inside the open transaction; ``rollback()`` restores exactly that
  boundary — cache writes, dependency registrations, aggregate delta
  state, provisional placeholders — without discarding outer work.
  Releases and rollbacks map onto the engine's WAL group commit points
  (the commit group is annotated with the owning session's name).

* **Snapshot reads.**  ``session.read_snapshot()`` pins the committed
  generation at open time: concurrent commits — including the async
  scheduler's own committing evaluations — do not move values under the
  snapshot (copy-on-write via the engine's before-commit hook).  A
  structural edit changes the coordinate space and *invalidates* open
  snapshots; reading one afterwards raises
  :class:`~repro.errors.SnapshotInvalidatedError`.

* **Per-session viewports.**  Each session's viewport feeds the async
  scheduler's priority queue; the scheduler round-robins between
  sessions' viewports so one client cannot starve another's visible
  region.

* **Overload protection.**  Admission-control quotas
  (``max_pending_compute`` / ``max_pending_per_owner`` engine kwargs)
  shed async edits past the queue's high-water mark with
  :class:`~repro.errors.EngineOverloadedError`; sessions retry through
  the shared :class:`~repro.service.retry.RetryPolicy`
  (:meth:`Session.retrying`).  :meth:`Session.value` reads with a
  deadline, degrading to the last *committed* value — tagged, never a
  silent placeholder — when ``allow_stale=True``.  Sessions carry a
  lease (heartbeat on every op); the :meth:`Workspace.reap` sweep rolls
  back expired idle transactions through the engine's undo machinery so
  their write-locks release, and later use of the reaped session raises
  :class:`~repro.errors.SessionExpiredError`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.compute import CellState
from repro.engine.dataspread import DataSpread, Savepoint
from repro.grid.address import CellAddress
from repro.errors import (
    EngineOverloadedError,
    SavepointError,
    SessionError,
    SessionExpiredError,
    SnapshotInvalidatedError,
    TransactionBusyError,
)
from repro.grid.range import RangeRef
from repro.service.retry import RetryPolicy


@dataclass(frozen=True)
class CellRead:
    """One deadline-aware read result with its staleness metadata.

    ``fresh`` means the value reflects every precedent at read time.  A
    ``degraded`` read missed its deadline and served the cell's last
    *committed* value instead of blocking — stale but never a lost edit
    and never an uncommitted placeholder; ``retry_after_ms`` hints when a
    re-read is likely to come back fresh.
    """

    value: Any
    fresh: bool
    degraded: bool
    state: CellState
    retry_after_ms: float = 0.0


class Workspace:
    """One shared engine, many sessions.

    Keyword arguments are forwarded to the :class:`DataSpread` constructor;
    ``async_recompute`` defaults to ``True`` because a multi-client service
    wants edits acknowledged before dependents recompute.  Pass an existing
    engine via ``engine=`` to wrap one (e.g. a recovered workspace).

    ``session_lease_ms`` arms the transaction reaper: a session whose
    write transaction sits idle (no op, no heartbeat) past the lease is
    rolled back by the next :meth:`reap` sweep.  ``clock`` injects the
    time source both the lease and read deadlines are measured on;
    ``retry_policy`` overrides the default policy :meth:`Session.retrying`
    uses.  These three are workspace-level and may accompany ``engine=``.
    """

    def __init__(self, *, engine: DataSpread | None = None,
                 session_lease_ms: float | None = None,
                 clock: Callable[[], float] | None = None,
                 retry_policy: RetryPolicy | None = None,
                 **engine_kwargs: Any) -> None:
        if engine is None:
            engine_kwargs.setdefault("async_recompute", True)
            if clock is not None:
                engine_kwargs.setdefault("clock", clock)
            engine = DataSpread(**engine_kwargs)
        elif engine_kwargs:
            raise SessionError("pass either an engine or engine kwargs, not both")
        self._spread = engine
        self._spread.before_commit_hook = self._before_commit
        self._spread.invalidation_hook = self._coordinates_changed
        self._sessions: dict[str, "Session"] = {}
        self._txn_owner: "Session | None" = None
        self._snapshots: list["ReadSnapshot"] = []
        self._next_session = 0
        self._closed = False
        self._clock = clock if clock is not None else engine.clock
        self._lease_ms = session_lease_ms
        #: Policy session retry loops use by default (:meth:`Session.retrying`).
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()

    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> DataSpread:
        """The shared engine (read freely; prefer sessions for writes)."""
        return self._spread

    @property
    def transaction_owner(self) -> "Session | None":
        """The session currently holding the write transaction, if any."""
        return self._txn_owner

    def open_session(self, name: str | None = None) -> "Session":
        self._require_open()
        self._next_session += 1
        if name is None:
            name = f"session-{self._next_session}"
        if name in self._sessions:
            raise SessionError(f"session {name!r} already open")
        session = Session(self, name)
        self._sessions[name] = session
        return session

    def drain(self, limit: int | None = None) -> int:
        """Run up to ``limit`` queued evaluations (all of them when None).

        Draining happens outside any session scope: the scheduler computes
        from committed values only, never from a transaction's buffered
        writes.
        """
        return self._spread.flush_compute(limit)

    def flush(self) -> int:
        """Drain the compute queue completely."""
        return self._spread.flush_compute()

    # ------------------------------------------------------------------ #
    # overload protection
    # ------------------------------------------------------------------ #
    @property
    def shed_count(self) -> int:
        """Edits refused by the scheduler's admission control so far."""
        return self._spread.compute_scheduler.stats.shed

    @property
    def stale_serve_count(self) -> int:
        """Deadline reads served degraded (stale value tagged) so far."""
        return self._spread.stale_serves

    @property
    def reaped_count(self) -> int:
        """Expired idle transactions the reaper has rolled back so far."""
        return self._spread.reaped_transactions

    def health(self) -> dict:
        """The engine's overload snapshot plus per-session lease status."""
        snapshot = self._spread.health()
        now = self._clock()
        snapshot["sessions"] = {
            name: {
                "in_transaction": session.in_transaction,
                "idle_ms": (now - session.last_heartbeat) * 1000.0,
            }
            for name, session in self._sessions.items()
        }
        snapshot["transaction_owner"] = (
            self._txn_owner.name if self._txn_owner is not None else None
        )
        snapshot["lease_ms"] = self._lease_ms
        return snapshot

    def reap(self, now: float | None = None) -> list[str]:
        """Roll back expired idle transactions; returns reaped session names.

        A sweep, meant to run periodically (or opportunistically before
        acquiring the write slot).  When ``session_lease_ms`` is armed and
        the transaction-holding session has not heartbeat within it, the
        whole transaction unwinds through the engine's savepoint/undo
        machinery — buffered writes discarded, flushed pre-barrier work
        kept, cell write-locks released — and the session handle expires:
        every later op on it raises
        :class:`~repro.errors.SessionExpiredError`.  ``now`` overrides the
        workspace clock (tests drive virtual time through it).

        Sessions *without* an open transaction are never reaped — an idle
        reader holds no locks, so there is nothing to reclaim.
        """
        self._require_open()
        if self._lease_ms is None:
            return []
        now = self._clock() if now is None else now
        owner = self._txn_owner
        if owner is None:
            return []
        if (now - owner.last_heartbeat) * 1000.0 < self._lease_ms:
            return []
        with self._scope(owner):
            self._spread.abort_transaction()
        self._txn_owner = None
        owner._expired = True
        self._spread.reaped_transactions += 1
        self._sessions.pop(owner.name, None)
        self._spread.set_viewport(None, owner=owner)
        return [owner.name]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for snapshot in list(self._snapshots):
            snapshot.close()
        self._sessions.clear()
        self._spread.before_commit_hook = None
        self._spread.invalidation_hook = None
        self._spread.close()

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #
    def _before_commit(self, keys: list[tuple[int, int]]) -> None:
        # Copy-on-write for open snapshots: capture the committed value of
        # every about-to-be-overwritten cell a snapshot has not pinned yet.
        for snapshot in self._snapshots:
            snapshot._capture(keys)

    def _coordinates_changed(self, _edit: Any) -> None:
        # A structural edit (or wholesale relink) shifts the coordinate
        # space; pinned (row, column) keys no longer name the same cells.
        for snapshot in self._snapshots:
            snapshot._invalidated = True
        self._snapshots.clear()

    # ------------------------------------------------------------------ #
    # session plumbing
    # ------------------------------------------------------------------ #
    @contextmanager
    def _scope(self, session: "Session") -> Iterator[None]:
        previous = self._spread.activate_scope(session, session.name)
        try:
            yield
        finally:
            self._spread.activate_scope(*previous)

    def _acquire_txn(self, session: "Session") -> bool:
        """Claim the single write-transaction slot.

        Returns True when this call took the slot (the caller must release
        it), False when ``session`` already holds it (re-entrant nesting).
        """
        if self._txn_owner is None:
            self._txn_owner = session
            return True
        if self._txn_owner is session:
            return False
        raise TransactionBusyError(
            f"session {session.name!r}: write transaction held by session "
            f"{self._txn_owner.name!r}"
        )

    def _release_txn(self, session: "Session") -> None:
        if self._txn_owner is session and not self._spread.in_batch:
            self._txn_owner = None

    def _check_structural(self, session: "Session") -> None:
        if self._txn_owner is not None and self._txn_owner is not session:
            raise TransactionBusyError(
                "structural edits must wait for session "
                f"{self._txn_owner.name!r} to commit (they would shift the "
                "coordinate space under its buffered writes)"
            )

    def _require_open(self) -> None:
        if self._closed:
            raise SessionError("workspace is closed")


class Session:
    """One client's handle on a shared :class:`Workspace`.

    All reads and writes run under the session's *scope*: buffered
    transaction writes belong to (and are visible to) this session only.
    Do not share one session between threads; open one per client instead.
    """

    def __init__(self, workspace: Workspace, name: str) -> None:
        self._workspace = workspace
        self.name = name
        self._closed = False
        self._expired = False
        #: Lease heartbeat (workspace-clock seconds); every op renews it.
        self.last_heartbeat = workspace._clock()

    # ------------------------------------------------------------------ #
    @property
    def workspace(self) -> Workspace:
        return self._workspace

    @property
    def in_transaction(self) -> bool:
        return self._workspace._txn_owner is self

    @property
    def expired(self) -> bool:
        """Whether the reaper rolled this session's lease-expired
        transaction back; an expired handle is dead."""
        return self._expired

    def heartbeat(self) -> None:
        """Renew the session's lease without performing any operation."""
        self._touch()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        ws = self._workspace
        ws._sessions.pop(self.name, None)
        ws._spread.set_viewport(None, owner=self)
        if ws._txn_owner is self and not ws._spread.in_batch:
            ws._txn_owner = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def set_value(self, row: int, column: int, value: Any) -> None:
        self._write(lambda engine: engine.set_value(row, column, value),
                    (row, column))

    def set_formula(self, row: int, column: int, formula: str) -> Any:
        return self._write(lambda engine: engine.set_formula(row, column, formula),
                           (row, column))

    def set_input(self, reference: str, text: Any) -> Any:
        address = CellAddress.from_a1(reference)
        return self._write(lambda engine: engine.set_input(reference, text),
                           (address.row, address.column))

    def clear_cell(self, row: int, column: int) -> None:
        self._write(lambda engine: engine.clear_cell(row, column),
                    (row, column))

    def insert_row_after(self, row: int, count: int = 1) -> None:
        self._structural(lambda engine: engine.insert_row_after(row, count))

    def delete_row(self, row: int, count: int = 1) -> None:
        self._structural(lambda engine: engine.delete_row(row, count))

    def insert_column_after(self, column: int, count: int = 1) -> None:
        self._structural(lambda engine: engine.insert_column_after(column, count))

    def delete_column(self, column: int, count: int = 1) -> None:
        self._structural(lambda engine: engine.delete_column(column, count))

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #
    @contextmanager
    def batch(self) -> Iterator["Session"]:
        """Open (or nest within) this session's write transaction.

        Acquires the workspace's single-writer slot; a nested call is a
        savepoint (engine semantics).  Raises
        :class:`~repro.errors.TransactionBusyError` when another session's
        transaction is open.
        """
        self._require_usable()
        ws = self._workspace
        acquired = ws._acquire_txn(self)
        try:
            with ws._scope(self), ws._spread.batch():
                yield self
        except SavepointError:
            if self._expired:
                # The reaper unwound this transaction while the block was
                # open; the clean exit found its frame gone.
                raise SessionExpiredError(
                    f"session {self.name!r} expired: its idle transaction "
                    f"was reaped after its lease lapsed"
                ) from None
            raise
        finally:
            if acquired:
                ws._release_txn(self)

    def savepoint(self) -> "SessionSavepoint":
        """Capture an undo boundary in this session's transaction.

        Outside a batch this opens a transaction of its own (released on
        ``release()`` / context-manager exit).
        """
        self._require_usable()
        ws = self._workspace
        acquired = ws._acquire_txn(self)
        try:
            with ws._scope(self):
                handle = ws._spread.savepoint()
        except BaseException:
            if acquired:
                ws._release_txn(self)
            raise
        return SessionSavepoint(self, handle, acquired)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def get_value(self, row: int, column: int) -> Any:
        self._require_usable()
        with self._workspace._scope(self):
            return self._workspace._spread.get_value(row, column)

    def value(self, row: int, column: int, *,
              deadline_ms: float | None = None,
              allow_stale: bool = False) -> CellRead:
        """Read one cell with freshness metadata and an optional deadline.

        Without a deadline this behaves like ``get_fresh_value``: the
        scheduler evaluates exactly the stale subtree the cell reads, then
        the fresh value returns.  With ``deadline_ms`` the targeted drain
        stops cooperatively at the deadline (measured on the workspace's
        injectable clock; ``deadline_ms=0`` does no compute work at all).
        If the cell is still stale then:

        * ``allow_stale=True`` → the read *degrades*: the cell's last
          committed value returns tagged ``degraded`` (with a
          ``retry_after_ms`` hint) — stale, but never an uncommitted
          placeholder and never a lost committed edit;
        * ``allow_stale=False`` → raises
          :class:`~repro.errors.EngineOverloadedError` naming this
          session, so callers distinguish "overloaded" from "no value".
        """
        self._require_usable()
        ws = self._workspace
        engine = ws._spread
        scheduler = engine.compute_scheduler
        address = CellAddress(row, column)
        with ws._scope(self):
            if deadline_ms is None:
                scheduler.ensure(address)
            elif deadline_ms > 0:
                scheduler.ensure(
                    address,
                    deadline=ws._clock() + deadline_ms / 1000.0,
                    clock=ws._clock,
                )
            state = scheduler.state_of(address)
            value = engine.get_value(row, column)
        if state is CellState.FRESH:
            return CellRead(value=value, fresh=True, degraded=False, state=state)
        if allow_stale:
            engine.stale_serves += 1
            return CellRead(
                value=value, fresh=False, degraded=True, state=state,
                retry_after_ms=scheduler.retry_after_hint(),
            )
        raise EngineOverloadedError(
            f"session {self.name!r}: cell {address.to_a1()} still stale "
            f"after its {deadline_ms}ms read deadline",
            retry_after_ms=scheduler.retry_after_hint(),
        )

    def retrying(self, operation: Any, *, policy: RetryPolicy | None = None) -> Any:
        """Run ``operation()`` under the workspace's retry policy.

        Retries :class:`~repro.errors.TransactionBusyError` (another
        session's transaction holds a lock) and
        :class:`~repro.errors.EngineOverloadedError` (admission control
        shed the edit, whose ``retry_after_ms`` hint the backoff honours);
        the final failure re-raises unchanged.
        """
        policy = policy if policy is not None else self._workspace.retry_policy
        return policy.call(operation)

    def get_cell(self, row: int, column: int) -> Any:
        self._require_usable()
        with self._workspace._scope(self):
            return self._workspace._spread.get_cell(row, column)

    def get_range_values(self, region: RangeRef | str) -> list[list[Any]]:
        self._require_usable()
        with self._workspace._scope(self):
            return self._workspace._spread.get_range_values(region)

    def set_viewport(self, region: RangeRef | str | None) -> None:
        """Declare this session's visible region (scheduler priority)."""
        self._workspace._spread.set_viewport(region, owner=self)

    def query(self, query: Any) -> Any:
        """Run a generative ``select()`` query (or SQL-free source) and
        return the drained :class:`~repro.engine.relational.TableValue`.

        Runs under this session's scope, so the session's own buffered
        transaction writes are visible to the scan.
        """
        with self._workspace._scope(self):
            return self._workspace._spread.execute(query).to_table()

    def create_live_view(self, query: Any, *, at: str | None = None,
                         name: str | None = None) -> Any:
        """Pin a live view on the shared engine (visible to all sessions)."""
        self._require_usable()
        with self._workspace._scope(self):
            return self._workspace._spread.create_live_view(query, at=at, name=name)

    def live_view_value(self, name: str) -> Any:
        """The current table of a named live view (refreshing if stale)."""
        self._require_usable()
        for view in self._workspace._spread.live_views:
            if view.name == name:
                with self._workspace._scope(self):
                    return view.value()
        raise KeyError(f"no live view named {name!r}")

    def read_snapshot(self) -> "ReadSnapshot":
        """Pin the committed generation for consistent multi-cell reads."""
        self._require_usable()
        snapshot = ReadSnapshot(self._workspace, session=self)
        self._workspace._snapshots.append(snapshot)
        return snapshot

    # ------------------------------------------------------------------ #
    def _write(self, operation, key: tuple[int, int]):
        self._require_usable()
        ws = self._workspace
        owner = ws._txn_owner
        if owner is None or owner is self:
            with ws._scope(self):
                return operation(ws._spread)
        # Another session's transaction is open: commit autonomously so a
        # long transaction never blocks other clients' single edits.  Cells
        # the transaction has uncommitted work on are write-locked — an
        # autonomous overwrite would race the owner's commit flush.
        if ws._spread.transaction_touches(*key):
            raise TransactionBusyError(
                f"session {self.name!r}: cell {key} is write-locked by "
                f"session {owner.name!r}'s open transaction"
            )
        with ws._scope(self), ws._spread.autonomous():
            return operation(ws._spread)

    def _structural(self, operation):
        self._require_usable()
        ws = self._workspace
        ws._check_structural(self)
        with ws._scope(self):
            return operation(ws._spread)

    def _require_usable(self) -> None:
        if self._expired:
            raise SessionExpiredError(
                f"session {self.name!r} expired: its idle transaction was "
                f"reaped after its lease lapsed; open a new session"
            )
        if self._closed:
            raise SessionError(f"session {self.name!r} is closed")
        self._workspace._require_open()
        self._touch()

    def _touch(self) -> None:
        self.last_heartbeat = self._workspace._clock()


class SessionSavepoint:
    """A session-scoped wrapper over the engine's :class:`Savepoint`.

    Rollback and release run under the owning session's scope; releasing
    (or unwinding) the savepoint that *opened* the transaction also frees
    the workspace's single-writer slot.
    """

    def __init__(self, session: Session, handle: Savepoint, acquired: bool) -> None:
        self._session = session
        self._handle = handle
        self._acquired = acquired

    @property
    def active(self) -> bool:
        return self._handle.active

    def rollback(self) -> None:
        """Restore the boundary; the savepoint stays open for re-rollback.

        Raises :class:`~repro.errors.SavepointError` when a mid-batch
        commit point (structural edit) made the work durable, and
        :class:`~repro.errors.SessionExpiredError` when the owning
        session's transaction was reaped out from under this handle.
        """
        self._check_expired()
        ws = self._session._workspace
        with ws._scope(self._session):
            self._handle.rollback()

    def release(self) -> None:
        """Keep the work and close the boundary (commits when outermost)."""
        self._check_expired()
        ws = self._session._workspace
        with ws._scope(self._session):
            self._handle.release()
        self._settle_txn()

    def _check_expired(self) -> None:
        if self._session._expired:
            raise SessionExpiredError(
                f"session {self._session.name!r} expired: this savepoint's "
                f"transaction was reaped after its lease lapsed"
            )

    def __enter__(self) -> "SessionSavepoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # A reaped transaction leaves the handle inert (its frame is gone):
        # the engine exit no-ops, but a *clean* exit must not pretend the
        # work was kept — surface the expiry instead.
        reaped = self._session._expired and not self._handle._released
        ws = self._session._workspace
        try:
            with ws._scope(self._session):
                self._handle.__exit__(exc_type, exc, tb)
        finally:
            self._settle_txn()
        if exc_type is None and reaped:
            self._check_expired()

    def _settle_txn(self) -> None:
        if self._acquired:
            self._session._workspace._release_txn(self._session)


class ReadSnapshot:
    """A consistent view of the committed grid at open time.

    Values the snapshot has read — or could read — do not move while it is
    open: the workspace captures the committed preimage of every cell just
    before a commit overwrites it (copy-on-write), including the async
    scheduler's own committing evaluations mid-drain.  Uncommitted work
    (any session's buffered transaction writes) is never visible.

    A structural edit invalidates the snapshot wholesale: the pinned
    (row, column) keys no longer name the same conceptual cells, so reads
    raise :class:`~repro.errors.SnapshotInvalidatedError` afterwards.
    """

    def __init__(self, workspace: Workspace, *,
                 session: "Session | None" = None) -> None:
        self._workspace = workspace
        self._session = session
        self._overlay: dict[tuple[int, int], Any] = {}
        self._invalidated = False
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def valid(self) -> bool:
        return not (self._invalidated or self._closed)

    def get_value(self, row: int, column: int) -> Any:
        if self._invalidated:
            raise SnapshotInvalidatedError(
                f"{self._owner_label()}: a structural edit changed the "
                f"coordinate space after this snapshot was opened"
            )
        if self._closed:
            raise SessionError(f"{self._owner_label()} is closed")
        key = (row, column)
        if key in self._overlay:
            return self._overlay[key]
        # The data model holds exactly the committed state: transaction
        # buffers and provisional placeholders live in the cache and never
        # reach the model before their commit point.
        return self._workspace._spread.model.get_cell(row, column).value

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._workspace._snapshots.remove(self)
        except ValueError:
            pass  # already invalidated (and unregistered) or workspace closed

    def __enter__(self) -> "ReadSnapshot":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _owner_label(self) -> str:
        if self._session is not None:
            return f"session {self._session.name!r}'s snapshot"
        return "snapshot"

    def _capture(self, keys: list[tuple[int, int]]) -> None:
        model = self._workspace._spread.model
        for key in keys:
            if key not in self._overlay:
                self._overlay[key] = model.get_cell(*key).value
