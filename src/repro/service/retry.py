"""Shared bounded-backoff retry policy for transient contention errors.

One policy object serves every retry loop in the system:

* **sessions** retrying :class:`~repro.errors.TransactionBusyError`
  (another session's transaction holds a write-lock) and
  :class:`~repro.errors.EngineOverloadedError` (admission control shed
  the edit) — see :meth:`~repro.service.workspace.Session.retrying`;
* the **WAL writer** retrying transient ``OSError`` s on append/fsync
  (``repro.storage.wal.WALWriter`` builds a policy from its legacy
  ``max_retries``/``backoff_seconds`` knobs).

The backoff is bounded exponential with *deterministic* jitter: the
jitter fraction for attempt *n* is derived from a Weyl sequence over the
attempt number, not from a random source, so two runs of the same
schedule sleep for exactly the same durations — which is what lets the
fault-injection tests assert the schedule and lets tier-1 tests replace
``sleep``/``clock`` with virtual time and never really block.

When the caught error carries a ``retry_after_ms`` hint (the scheduler's
overload errors do), the hint wins over the computed backoff when it is
larger — the server knows how deep its queue is; the client does not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import EngineOverloadedError, TransactionBusyError

#: Errors a session-level retry loop treats as transient by default.
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (
    TransactionBusyError,
    EngineOverloadedError,
)

#: Knuth's multiplicative-hash constant; drives the deterministic jitter.
_WEYL = 2654435761


def _jitter_fraction(attempt: int) -> float:
    """A deterministic pseudo-uniform fraction in [0, 1) per attempt."""
    return ((attempt + 1) * _WEYL % (2 ** 32)) / (2 ** 32)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included); the last failure re-raises.
    base_delay_ms / multiplier / max_delay_ms:
        Attempt *n* (0-based) backs off ``base * multiplier**n``
        milliseconds, capped at ``max_delay_ms``.
    jitter:
        Fraction of the computed backoff added as deterministic jitter
        (0 disables; 0.25 adds up to +25%).
    clock / sleep:
        Injectable time sources (seconds); tests pass virtual ones so no
        real time passes.
    """

    max_attempts: int = 5
    base_delay_ms: float = 1.0
    multiplier: float = 2.0
    max_delay_ms: float = 250.0
    jitter: float = 0.25
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("delays must be >= 0")

    # ------------------------------------------------------------------ #
    def delay_ms(self, attempt: int, *, hint_ms: float | None = None) -> float:
        """The backoff before retry ``attempt`` (0-based), in milliseconds.

        ``hint_ms`` is a server-provided ``retry_after_ms``; it overrides
        the computed backoff when larger (and is never capped — the
        server's estimate of its own queue wins).
        """
        backoff = min(self.base_delay_ms * (self.multiplier ** attempt),
                      self.max_delay_ms)
        delay = backoff * (1.0 + self.jitter * _jitter_fraction(attempt))
        if hint_ms is not None:
            delay = max(delay, hint_ms)
        return delay

    def call(
        self,
        operation: Callable[[], Any],
        *,
        retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRY_ON,
        on_retry: Callable[[BaseException, int], None] | None = None,
    ) -> Any:
        """Run ``operation`` under this policy; returns its result.

        Retries on ``retry_on`` errors, sleeping the per-attempt backoff
        (honouring ``retry_after_ms`` hints) between attempts;
        ``on_retry(error, attempt)`` fires before each backoff (the WAL
        writer rewinds its file offset there).  The final failure is
        re-raised unchanged.
        """
        for attempt in range(self.max_attempts):
            try:
                return operation()
            except retry_on as error:
                if attempt + 1 >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(error, attempt)
                hint = getattr(error, "retry_after_ms", None)
                self.sleep(self.delay_ms(attempt, hint_ms=hint) / 1000.0)
        raise AssertionError("unreachable")  # pragma: no cover
