"""Concurrent multi-session service layer (see :mod:`.workspace`)."""

from repro.service.workspace import ReadSnapshot, Session, SessionSavepoint, Workspace

__all__ = ["Workspace", "Session", "SessionSavepoint", "ReadSnapshot"]
