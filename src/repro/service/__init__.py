"""Concurrent multi-session service layer (see :mod:`.workspace`)."""

from repro.service.retry import RetryPolicy
from repro.service.workspace import (
    CellRead,
    ReadSnapshot,
    Session,
    SessionSavepoint,
    Workspace,
)

__all__ = [
    "Workspace",
    "Session",
    "SessionSavepoint",
    "ReadSnapshot",
    "CellRead",
    "RetryPolicy",
]
