"""The Database facade of the row-store substrate.

A :class:`Database` owns a catalog and, per table, a heap file plus an
optional B+-tree key index.  It also knows how to account for storage using
a :class:`~repro.storage.costs.CostParameters`, which is how the data-model
experiments measure the footprint of ROM/COM/RCV/hybrid layouts.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.errors import CatalogError, StorageError
from repro.storage.btree import BPlusTree
from repro.storage.catalog import Catalog, ColumnDef, TableSchema
from repro.storage.costs import POSTGRES_COSTS, CostParameters
from repro.storage.heap import HeapFile
from repro.storage.tuples import Record, TuplePointer

Predicate = Callable[[Record], bool]


class Table:
    """A stored table: schema + heap file + optional key index."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.heap = HeapFile()
        self.key_index: BPlusTree[Any, TuplePointer] | None = (
            BPlusTree() if schema.key_column is not None else None
        )
        self._key_position = (
            schema.column_index(schema.key_column) if schema.key_column is not None else None
        )

    # ------------------------------------------------------------------ #
    @property
    def row_count(self) -> int:
        """Number of live rows."""
        return self.heap.record_count

    def insert(self, record: Record) -> TuplePointer:
        """Validate and insert a record; maintains the key index.

        Records with a NULL key are stored but not indexed (they remain
        reachable through scans), mirroring how a partial index behaves.
        """
        self.schema.validate_record(record)
        pointer = self.heap.insert(record)
        if self.key_index is not None and self._key_position is not None \
                and record[self._key_position] is not None:
            self.key_index.insert(record[self._key_position], pointer)
        return pointer

    def read(self, pointer: TuplePointer) -> Record:
        """Fetch the record at ``pointer``."""
        return self.heap.read(pointer)

    def update(self, pointer: TuplePointer, record: Record) -> TuplePointer:
        """Replace the record at ``pointer``; maintains the key index."""
        self.schema.validate_record(record)
        old = self.heap.read(pointer)
        new_pointer = self.heap.update(pointer, record)
        if self.key_index is not None and self._key_position is not None:
            if old[self._key_position] is not None:
                self.key_index.delete(old[self._key_position])
            if record[self._key_position] is not None:
                self.key_index.insert(record[self._key_position], new_pointer)
        return new_pointer

    def delete(self, pointer: TuplePointer) -> None:
        """Delete the record at ``pointer``; maintains the key index."""
        record = self.heap.read(pointer)
        self.heap.delete(pointer)
        if self.key_index is not None and self._key_position is not None \
                and record[self._key_position] is not None:
            self.key_index.delete(record[self._key_position])

    def scan(self, predicate: Predicate | None = None) -> Iterator[tuple[TuplePointer, Record]]:
        """Iterate live records, optionally filtered."""
        for pointer, record in self.heap.scan():
            if predicate is None or predicate(record):
                yield pointer, record

    def lookup(self, key: Any) -> tuple[TuplePointer, Record] | None:
        """Point lookup through the key index (or a scan when unindexed)."""
        if key is None:
            return None  # NULL keys are never indexed and never match
        if self.key_index is not None:
            pointer = self.key_index.get(key)
            if pointer is None:
                return None
            return pointer, self.heap.read(pointer)
        if self._key_position is None:
            raise StorageError(f"table {self.schema.name!r} has no key column")
        for pointer, record in self.heap.scan():
            if record[self._key_position] == key:
                return pointer, record
        return None

    def rows(self) -> list[Record]:
        """Materialise all live records (in physical order)."""
        return [record for _, record in self.heap.scan()]


class Database:
    """A collection of tables with cost-model-based storage accounting."""

    def __init__(self, costs: CostParameters = POSTGRES_COSTS) -> None:
        self.costs = costs
        self.catalog = Catalog()
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #
    def create_table(
        self,
        name: str,
        columns: Iterable[str | ColumnDef],
        *,
        key_column: str | None = None,
    ) -> Table:
        """Create a table and return its handle."""
        schema = TableSchema.build(name, columns, key_column=key_column)
        self.catalog.register(schema)
        table = Table(schema)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table and its data."""
        self.catalog.unregister(name)
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Fetch a table handle; raises :class:`CatalogError` when absent."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} does not exist") from exc

    def has_table(self, name: str) -> bool:
        """Whether a table with ``name`` exists."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """All table names."""
        return self.catalog.table_names()

    # ------------------------------------------------------------------ #
    # DML conveniences
    # ------------------------------------------------------------------ #
    def insert(self, name: str, record: Record) -> TuplePointer:
        """Insert into table ``name``."""
        return self.table(name).insert(record)

    def insert_many(self, name: str, records: Iterable[Record]) -> list[TuplePointer]:
        """Insert many records, returning their pointers."""
        table = self.table(name)
        return [table.insert(record) for record in records]

    def scan(self, name: str, predicate: Predicate | None = None) -> Iterator[Record]:
        """Iterate the records of a table."""
        for _, record in self.table(name).scan(predicate):
            yield record

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #
    def table_storage_cost(self, name: str) -> float:
        """Cost-model storage footprint of one table (Equation 1 style).

        ROM/COM-shaped tables are charged ``s1 + s2*cells + s3*columns +
        s4*rows``; this matches how the paper accounts for tables regardless
        of which translator owns them.
        """
        table = self.table(name)
        rows = table.row_count
        columns = table.schema.column_count
        return self.costs.rom_cost(rows, columns)

    def total_storage_cost(self) -> float:
        """Sum of the per-table storage costs."""
        return sum(self.table_storage_cost(name) for name in self._tables)
