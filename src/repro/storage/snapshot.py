"""Whole-workspace checkpoints with write-ahead-log truncation.

A durable workspace directory holds at most two artefacts:

``snapshot.bin``
    One CRC-checksummed frame (the same codec as the WAL) containing the
    full committed cell state — values, formula text, and the engine
    configuration needed to rebuild the models (the positional mappings
    and hybrid layout are derived state: they rebuild deterministically
    from the logical cells, exactly as the PR 2 serializer's round-trip
    contract established).  The snapshot carries a *generation* number.

``wal-<generation>.log``
    The write-ahead log of everything committed *since* the snapshot of
    that generation.  Generation 0 with no snapshot file is the fresh,
    empty workspace.

Checkpointing is crash-safe by ordering, not by locks:

1. write ``snapshot.bin`` for generation ``g+1`` to a temp file and
   ``os.replace`` it into place (atomic on POSIX);
2. create the empty ``wal-(g+1).log``;
3. delete stale ``wal-*.log`` files of earlier generations.

A crash before (1) recovers from snapshot ``g`` + ``wal-g``; a crash
between (1) and (3) recovers from snapshot ``g+1`` and ignores the stale
``wal-g`` (its edits are already folded into the snapshot); the log never
replays against the wrong base state.
"""

from __future__ import annotations

import os
import re
from typing import Any

from repro.errors import RecoveryError
from repro.storage.wal import decode_frames, encode_frame

SNAPSHOT_NAME = "snapshot.bin"
_WAL_PATTERN = re.compile(r"^wal-(\d+)\.log$")

#: Snapshot payload format version.
SNAPSHOT_VERSION = 1


def wal_path(directory: str, generation: int) -> str:
    """The log file paired with snapshot ``generation``."""
    return os.path.join(directory, f"wal-{generation}.log")


def snapshot_path(directory: str) -> str:
    return os.path.join(directory, SNAPSHOT_NAME)


def list_wal_generations(directory: str) -> list[int]:
    """Generations that have a log file on disk, ascending."""
    if not os.path.isdir(directory):
        return []
    generations = []
    for name in os.listdir(directory):
        match = _WAL_PATTERN.match(name)
        if match:
            generations.append(int(match.group(1)))
    return sorted(generations)


def write_snapshot(
    directory: str,
    *,
    generation: int,
    cells: list[tuple[int, int, Any, str | None]],
    config: dict[str, Any] | None = None,
) -> int:
    """Atomically write the workspace snapshot; returns its size in bytes.

    ``cells`` holds ``(row, column, value, formula)`` tuples of every
    committed non-empty cell.
    """
    record = {
        "t": "snapshot",
        "version": SNAPSHOT_VERSION,
        "generation": generation,
        "config": config or {},
        "cells": [[row, column, value, formula] for row, column, value, formula in cells],
    }
    frame = encode_frame(record)
    final = snapshot_path(directory)
    temp = final + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(frame)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, final)
    return len(frame)


def load_snapshot(directory: str) -> dict[str, Any] | None:
    """Read the snapshot record, or ``None`` for a generation-0 workspace.

    Raises :class:`~repro.errors.RecoveryError` when a snapshot file exists
    but is torn or corrupt — unlike a torn WAL tail, a damaged snapshot
    means silent data loss, so it must not be skipped quietly.
    """
    path = snapshot_path(directory)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        data = handle.read()
    records = list(decode_frames(data))
    if not records or records[0].get("t") != "snapshot":
        raise RecoveryError(f"snapshot at {path} is corrupt")
    record = records[0]
    if record.get("version") != SNAPSHOT_VERSION:
        raise RecoveryError(
            f"snapshot at {path} has unsupported version {record.get('version')!r}"
        )
    return record


def truncate_stale_logs(directory: str, *, keep_generation: int) -> list[str]:
    """Delete log files of generations other than ``keep_generation``.

    Returns the deleted paths.  Called after a checkpoint lands: the old
    generation's edits are folded into the new snapshot, so its log is
    dead weight (and must not be replayed against the new base).
    """
    deleted = []
    for generation in list_wal_generations(directory):
        if generation != keep_generation:
            path = wal_path(directory, generation)
            os.remove(path)
            deleted.append(path)
    return deleted
