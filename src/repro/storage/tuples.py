"""Records and tuple pointers for the row-store substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

#: A record is an immutable sequence of column values.
Record = tuple

#: Fixed per-tuple header overhead, mirroring PostgreSQL's ~23-byte header
#: plus alignment; used only for size accounting.
TUPLE_HEADER_BYTES = 24


@dataclass(frozen=True, slots=True, order=True)
class TuplePointer:
    """A stable physical address of a record: (page id, slot id).

    Tuple pointers are what positional mappings store — they survive row
    renumbering on the spreadsheet because they identify the physical tuple,
    not its presentational position.
    """

    page_id: int
    slot_id: int


def value_size(value: Any) -> int:
    """Approximate on-disk size in bytes of one column value."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8")) + 1
    if isinstance(value, bytes):
        return len(value) + 1
    return len(repr(value)) + 1


def record_payload_size(record: Sequence[Any]) -> int:
    """Approximate on-disk size of a record, including the tuple header."""
    return TUPLE_HEADER_BYTES + sum(value_size(value) for value in record)
