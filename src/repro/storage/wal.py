"""Append-only write-ahead log for DataSpread workspaces.

The log is a sequence of *frames*, each a length-prefixed, CRC-checksummed
JSON record::

    [payload length : 4 bytes LE] [crc32(payload) : 4 bytes LE] [payload]

A torn tail — a frame whose length prefix runs past the end of the file or
whose checksum does not match (the classic half-written last frame after a
crash) — terminates the readable portion of the log; everything before it
is intact because frames are only ever appended.

Record taxonomy (the ``"t"`` field of the JSON payload):

``cell``
    One committed cell write: row, column, value, formula text.  An empty
    write (no value, no formula) is a clear.
``structural``
    One row/column insert or delete (axis, kind, line, count).  Replay
    re-keys every logged cell through the same coordinate mapping the
    engine uses (:class:`~repro.formula.rewrite.StructuralEdit`) and
    rewrites straddling formula references, so a structural record is
    self-sufficient even if the crash lands before the engine's rewritten
    formula texts were themselves logged.
``mark``
    An annotation: free-form metadata (e.g. which session transaction a
    group commit belongs to).  Skipped during replay.
``begin`` / ``commit`` / ``abort``
    Group-commit markers.  Records between a ``begin`` and its ``commit``
    apply atomically: a group missing its ``commit`` (torn tail, crash,
    explicit ``abort``) is discarded wholesale during recovery.

Durability contract: a *singleton* record (written outside any group) is
fsynced before the append returns; grouped records are buffered by the OS
and fsynced once, when the ``commit`` marker is written.  Those are exactly
the engine's commit points — synchronous writes, batch exits, structural
edits — so "the append returned" means "this edit survives a crash".

Transient ``OSError`` on append or fsync is retried with bounded backoff
(the shared :class:`~repro.service.retry.RetryPolicy`, built from the
``max_retries``/``backoff_seconds``/``sleep`` knobs); before each retry the
file is truncated back to the last known-good frame boundary so a
half-written attempt cannot corrupt the log ahead of its retry.  Exhausting
the retries raises :class:`~repro.errors.WALError`.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from typing import Any, Callable, Iterator

from repro.errors import WALError
from repro.formula.rewrite import StructuralEdit

#: Frame header: payload length + payload CRC32, little-endian u32 each.
FRAME_HEADER = struct.Struct("<II")

#: Default bounded-retry policy for transient IO errors.
DEFAULT_MAX_RETRIES = 4
DEFAULT_BACKOFF_SECONDS = 0.001


# ---------------------------------------------------------------------- #
# frame codec
# ---------------------------------------------------------------------- #
def encode_frame(record: dict[str, Any]) -> bytes:
    """Serialize one record into a length-prefixed, checksummed frame."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frames(data: bytes) -> Iterator[dict[str, Any]]:
    """Yield intact records from ``data``, stopping at the first torn frame.

    A torn tail (truncated header, truncated payload, or checksum mismatch)
    silently ends iteration — that is the expected shape of a crash — so
    callers never see a half-written record.
    """
    offset = 0
    total = len(data)
    while offset + FRAME_HEADER.size <= total:
        length, checksum = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        end = start + length
        if end > total:
            return  # torn: the payload never finished landing
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            return  # torn or corrupt: stop at the last intact frame
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return
        yield record
        offset = end


# ---------------------------------------------------------------------- #
# record constructors
# ---------------------------------------------------------------------- #
def cell_record(row: int, column: int, value: Any, formula: str | None) -> dict[str, Any]:
    """A committed cell write (an empty value+formula pair is a clear)."""
    return {"t": "cell", "r": row, "c": column, "v": value, "f": formula}


def structural_record(edit: StructuralEdit) -> dict[str, Any]:
    """A row/column insert or delete."""
    return {"t": "structural", "axis": edit.axis, "kind": edit.kind,
            "line": edit.line, "count": edit.count}


def structural_edit_from(record: dict[str, Any]) -> StructuralEdit:
    """Rebuild the :class:`StructuralEdit` a ``structural`` record describes."""
    return StructuralEdit(axis=record["axis"], kind=record["kind"],
                          line=record["line"], count=record["count"])


def mark_record(payload: dict[str, Any]) -> dict[str, Any]:
    """An annotation record: metadata riding in the log without replay effect.

    Marks let higher layers label their commit points (e.g. a session
    transaction stamping the group that carries its writes with its scope
    and savepoint count).  Replay skips them; they exist for forensics and
    for tests asserting which commit points a workload produced.
    """
    record = {"t": "mark"}
    record.update(payload)
    return record


BEGIN = {"t": "begin"}
COMMIT = {"t": "commit"}
ABORT = {"t": "abort"}


# ---------------------------------------------------------------------- #
# IO seam (fault injection plugs in here)
# ---------------------------------------------------------------------- #
class WALFileIO:
    """Default file-backed IO for the WAL writer.

    The writer talks to this four-method seam (``append`` / ``sync`` /
    ``truncate`` / ``close``) rather than the file directly, so tests can
    interpose fault injectors that tear writes, raise transient errors, or
    simulate a crash mid-frame.
    """

    def __init__(self, path: str) -> None:
        self._handle = open(path, "ab")

    def append(self, data: bytes) -> None:
        self._handle.write(data)
        self._handle.flush()

    def sync(self) -> None:
        os.fsync(self._handle.fileno())

    def truncate(self, size: int) -> None:
        self._handle.truncate(size)
        self._handle.seek(0, os.SEEK_END)

    def tell(self) -> int:
        return self._handle.tell()

    def close(self) -> None:
        self._handle.close()


#: Factory building the IO object for a log path (the injection point).
WALIOFactory = Callable[[str], Any]


# ---------------------------------------------------------------------- #
# writer
# ---------------------------------------------------------------------- #
class WALWriter:
    """Appends records durably, with group commit and bounded IO retry."""

    def __init__(
        self,
        path: str,
        *,
        io_factory: WALIOFactory | None = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        # Deferred import: repro.service's package init imports the engine
        # (and transitively this module), so a module-level import here
        # would be circular for callers importing the WAL directly.
        from repro.service.retry import RetryPolicy

        self.path = path
        self._io = (io_factory or WALFileIO)(path)
        # The historical inline loop slept backoff * 2**attempt with no
        # jitter; the shared policy reproduces that schedule exactly.
        self._policy = RetryPolicy(
            max_attempts=max_retries + 1,
            base_delay_ms=backoff_seconds * 1000.0,
            multiplier=2.0,
            max_delay_ms=float("inf"),
            jitter=0.0,
            sleep=sleep,
        )
        # Byte offset of the last durable/intact frame boundary; retries
        # truncate back to it so half-written attempts never pollute the log.
        self._good_offset = os.path.getsize(path) if os.path.exists(path) else 0
        self._in_group = False
        #: Frames appended (including group markers).
        self.frames_appended = 0
        #: Durable commit points reached: synced singletons + synced commits.
        self.durable_commits = 0
        #: Transient IO errors absorbed by the retry loop.
        self.retries = 0

    # ------------------------------------------------------------------ #
    @property
    def in_group(self) -> bool:
        """Whether a ``begin`` marker is open without its ``commit``."""
        return self._in_group

    def append(self, record: dict[str, Any]) -> None:
        """Append one record; fsyncs immediately unless a group is open."""
        self._append_frame(encode_frame(record))
        if not self._in_group:
            self._sync()
            self.durable_commits += 1

    def begin(self) -> None:
        """Open a group: subsequent appends defer their fsync to commit."""
        if self._in_group:
            raise WALError("WAL group already open")
        self._append_frame(encode_frame(BEGIN))
        self._in_group = True

    def commit(self) -> None:
        """Close the open group durably (one fsync for the whole group)."""
        if not self._in_group:
            raise WALError("no WAL group open")
        self._append_frame(encode_frame(COMMIT))
        self._in_group = False
        self._sync()
        self.durable_commits += 1

    def abort(self) -> None:
        """Mark the open group aborted; its records are dead on replay."""
        if not self._in_group:
            raise WALError("no WAL group open")
        self._in_group = False
        # Best-effort: an abort marker keeps the log tidy, but recovery
        # discards an unterminated group anyway, so failure to write the
        # marker (mid-crash) loses nothing.
        try:
            self._append_frame(encode_frame(ABORT))
            self._sync()
        except WALError:
            pass

    def close(self) -> None:
        self._io.close()

    # ------------------------------------------------------------------ #
    def _append_frame(self, frame: bytes) -> None:
        self._retry("append", lambda: self._io.append(frame),
                    rewind=True)
        self._good_offset += len(frame)
        self.frames_appended += 1

    def _sync(self) -> None:
        self._retry("fsync", self._io.sync, rewind=False)

    def _retry(self, action: str, operation: Callable[[], None], *, rewind: bool) -> None:
        def on_retry(_error: BaseException, _attempt: int) -> None:
            self.retries += 1
            if rewind:
                # The failed write may have landed partially; rewind to
                # the last intact frame boundary before trying again.
                try:
                    self._io.truncate(self._good_offset)
                except OSError:
                    pass  # the retry's own failure path will surface it

        try:
            self._policy.call(operation, retry_on=(OSError,), on_retry=on_retry)
        except OSError as error:
            self.retries += 1  # the final, unretried failure
            raise WALError(
                f"WAL {action} failed after {self._policy.max_attempts} "
                f"attempts: {error}"
            ) from error


# ---------------------------------------------------------------------- #
# reader
# ---------------------------------------------------------------------- #
def read_records(path: str) -> list[dict[str, Any]]:
    """All intact records in the log at ``path`` (torn tail discarded)."""
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        data = handle.read()
    return list(decode_frames(data))


def committed_records(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Fold group markers: the durably committed records, in log order.

    Singleton records pass through.  Records inside a ``begin``..``commit``
    group are released atomically at the commit; a group terminated by
    ``abort`` — or never terminated at all (crash mid-group) — is dropped
    wholesale, so replay can never observe a half-applied batch.
    """
    committed: list[dict[str, Any]] = []
    group: list[dict[str, Any]] | None = None
    for record in records:
        kind = record.get("t")
        if kind == "begin":
            # A dangling open group (crash between begin and commit)
            # followed by a fresh begin should never happen — the writer
            # forbids nesting — but drop the stale prefix defensively.
            group = []
        elif kind == "commit":
            if group is not None:
                committed.extend(group)
                group = None
        elif kind == "abort":
            group = None
        elif group is not None:
            group.append(record)
        else:
            committed.append(record)
    return committed
