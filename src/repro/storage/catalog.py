"""Schemas and the catalog of the row-store substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import CatalogError, SchemaError

#: Supported logical column types.
COLUMN_TYPES = ("integer", "float", "text", "boolean", "any")

_PYTHON_TYPES = {
    "integer": (int,),
    "float": (int, float),
    "text": (str,),
    "boolean": (bool,),
    "any": (object,),
}


@dataclass(frozen=True, slots=True)
class ColumnDef:
    """A column definition: name + logical type + nullability."""

    name: str
    type: str = "any"
    nullable: bool = True

    def __post_init__(self) -> None:
        if self.type not in COLUMN_TYPES:
            raise SchemaError(f"unknown column type {self.type!r}")

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` when ``value`` does not fit this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        expected = _PYTHON_TYPES[self.type]
        if self.type == "integer" and isinstance(value, bool):
            raise SchemaError(f"column {self.name!r} expects an integer, got a boolean")
        if not isinstance(value, expected):
            raise SchemaError(
                f"column {self.name!r} expects {self.type}, got {type(value).__name__}"
            )


@dataclass(frozen=True)
class TableSchema:
    """An ordered list of column definitions plus the table name."""

    name: str
    columns: tuple[ColumnDef, ...]
    key_column: str | None = None
    _index_by_name: dict[str, int] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        if self.key_column is not None and self.key_column not in names:
            raise SchemaError(f"key column {self.key_column!r} is not a column of {self.name!r}")
        object.__setattr__(self, "_index_by_name", {name: i for i, name in enumerate(names)})

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, name: str, columns: Iterable[str | ColumnDef], key_column: str | None = None) -> "TableSchema":
        """Build a schema from column names (typed ``any``) and/or ColumnDefs."""
        definitions = tuple(
            column if isinstance(column, ColumnDef) else ColumnDef(name=column)
            for column in columns
        )
        return cls(name=name, columns=definitions, key_column=key_column)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Ordered column names."""
        return tuple(column.name for column in self.columns)

    @property
    def column_count(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def column_index(self, name: str) -> int:
        """0-based position of a column; raises :class:`CatalogError` if absent."""
        try:
            return self._index_by_name[name]
        except KeyError as exc:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from exc

    def validate_record(self, record: tuple) -> None:
        """Raise :class:`SchemaError` when the record shape/types do not match."""
        if len(record) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.columns)} columns, got {len(record)}"
            )
        for column, value in zip(self.columns, record):
            column.validate(value)


class Catalog:
    """The set of table schemas known to a :class:`~repro.storage.database.Database`."""

    def __init__(self) -> None:
        self._schemas: dict[str, TableSchema] = {}

    def register(self, schema: TableSchema) -> None:
        """Add a schema; raises on duplicate names."""
        if schema.name in self._schemas:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._schemas[schema.name] = schema

    def unregister(self, name: str) -> None:
        """Remove a schema; raises when absent."""
        if name not in self._schemas:
            raise CatalogError(f"table {name!r} does not exist")
        del self._schemas[name]

    def get(self, name: str) -> TableSchema:
        """Fetch a schema; raises when absent."""
        try:
            return self._schemas[name]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} does not exist") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def table_names(self) -> list[str]:
        """All registered table names."""
        return sorted(self._schemas)
