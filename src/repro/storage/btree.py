"""A B+-tree index.

Used as (i) the key index of database tables in the substrate, and (ii) the
index structure behind the *position-as-is* baseline of Section V, where the
indexed key is the explicit row number and therefore every insert/delete of a
spreadsheet row triggers a cascade of key updates.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Generic, Iterator, TypeVar

from repro.errors import StorageError

K = TypeVar("K")
V = TypeVar("V")

DEFAULT_ORDER = 64


class _Node(Generic[K, V]):
    """Internal representation shared by leaf and interior nodes."""

    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list[K] = []
        self.children: list["_Node[K, V]"] = []     # interior only
        self.values: list[V] = []                   # leaf only
        self.next_leaf: "_Node[K, V] | None" = None  # leaf only


class BPlusTree(Generic[K, V]):
    """A textbook B+-tree mapping totally-ordered keys to values.

    Supports point lookup, insert (replacing the value of an existing key),
    delete, ordered iteration and inclusive range scans.  Node occupancy
    follows the usual invariants for order ``m``: interior nodes hold at most
    ``m`` children and (root excepted) at least ``ceil(m/2)``.
    """

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise ValueError("B+-tree order must be >= 3")
        self._order = order
        self._root: _Node[K, V] = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    @property
    def order(self) -> int:
        """Maximum number of children of an interior node."""
        return self._order

    def height(self) -> int:
        """Number of levels in the tree (1 for a lone leaf root)."""
        node = self._root
        levels = 1
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def _find_leaf(self, key: K) -> _Node[K, V]:
        """Descend to the leaf that would contain ``key``."""
        node = self._root
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: K, default: V | None = None) -> V | None:
        """The value stored under ``key``, or ``default``."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: K) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel  # type: ignore[arg-type]

    def items(self) -> Iterator[tuple[K, V]]:
        """Iterate ``(key, value)`` pairs in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        leaf: _Node[K, V] | None = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def range_scan(self, low: K, high: K) -> Iterator[tuple[K, V]]:
        """Iterate pairs with ``low <= key <= high`` in key order."""
        leaf: _Node[K, V] | None = self._find_leaf(low)
        while leaf is not None:
            start = bisect_left(leaf.keys, low)
            for index in range(start, len(leaf.keys)):
                key = leaf.keys[index]
                if key > high:  # type: ignore[operator]
                    return
                yield key, leaf.values[index]
            leaf = leaf.next_leaf

    def min_key(self) -> K:
        """Smallest key; raises when empty."""
        if self._size == 0:
            raise StorageError("empty B+-tree has no minimum key")
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> K:
        """Largest key; raises when empty."""
        if self._size == 0:
            raise StorageError("empty B+-tree has no maximum key")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # ------------------------------------------------------------------ #
    # insert
    # ------------------------------------------------------------------ #
    def insert(self, key: K, value: V) -> None:
        """Insert ``key`` -> ``value``; replaces the value of an existing key."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root: _Node[K, V] = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: _Node[K, V], key: K, value: V) -> tuple[K, _Node[K, V]] | None:
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        child_index = bisect_right(node.keys, key)
        split = self._insert(node.children[child_index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right)
        if len(node.children) > self._order:
            return self._split_interior(node)
        return None

    def _split_leaf(self, node: _Node[K, V]) -> tuple[K, _Node[K, V]]:
        middle = len(node.keys) // 2
        right: _Node[K, V] = _Node(is_leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_interior(self, node: _Node[K, V]) -> tuple[K, _Node[K, V]]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right: _Node[K, V] = _Node(is_leaf=False)
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right

    # ------------------------------------------------------------------ #
    # delete
    # ------------------------------------------------------------------ #
    def delete(self, key: K) -> bool:
        """Remove ``key``; returns whether it was present.

        Underflowed nodes are rebalanced by borrowing from or merging with a
        sibling, keeping the tree within B+-tree invariants.
        """
        removed = self._delete(self._root, key)
        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        return removed

    def _delete(self, node: _Node[K, V], key: K) -> bool:
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.keys.pop(index)
                node.values.pop(index)
                self._size -= 1
                return True
            return False
        child_index = bisect_right(node.keys, key)
        child = node.children[child_index]
        removed = self._delete(child, key)
        if removed:
            self._rebalance(node, child_index)
        return removed

    def _min_occupancy(self, node: _Node[K, V]) -> int:
        if node.is_leaf:
            return (self._order + 1) // 2
        return (self._order + 1) // 2

    def _rebalance(self, parent: _Node[K, V], child_index: int) -> None:
        child = parent.children[child_index]
        minimum = self._min_occupancy(child)
        size = len(child.keys) if child.is_leaf else len(child.children)
        if size >= minimum:
            return
        left_sibling = parent.children[child_index - 1] if child_index > 0 else None
        right_sibling = (
            parent.children[child_index + 1] if child_index + 1 < len(parent.children) else None
        )
        if left_sibling is not None and self._can_lend(left_sibling):
            self._borrow_from_left(parent, child_index)
        elif right_sibling is not None and self._can_lend(right_sibling):
            self._borrow_from_right(parent, child_index)
        elif left_sibling is not None:
            self._merge(parent, child_index - 1)
        elif right_sibling is not None:
            self._merge(parent, child_index)

    def _can_lend(self, node: _Node[K, V]) -> bool:
        size = len(node.keys) if node.is_leaf else len(node.children)
        return size > self._min_occupancy(node)

    def _borrow_from_left(self, parent: _Node[K, V], child_index: int) -> None:
        child = parent.children[child_index]
        left = parent.children[child_index - 1]
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[child_index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[child_index - 1])
            parent.keys[child_index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Node[K, V], child_index: int) -> None:
        child = parent.children[child_index]
        right = parent.children[child_index + 1]
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[child_index] = right.keys[0]
        else:
            child.keys.append(parent.keys[child_index])
            parent.keys[child_index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Node[K, V], left_index: int) -> None:
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # ------------------------------------------------------------------ #
    def bulk_load(self, pairs: Iterator[tuple[K, V]] | list[tuple[K, V]]) -> None:
        """Insert many pairs (keys need not be sorted)."""
        for key, value in pairs:
            self.insert(key, value)

    def check_invariants(self) -> None:
        """Validate ordering and occupancy invariants (used by tests)."""
        keys = [key for key, _ in self.items()]
        sorted_keys = sorted(keys)  # type: ignore[type-var]
        if keys != sorted_keys:
            raise AssertionError("B+-tree keys are not in sorted order")
        if len(set(map(repr, keys))) != len(keys):
            raise AssertionError("B+-tree contains duplicate keys")
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node[K, V], *, is_root: bool) -> int:
        if node.is_leaf:
            if not is_root and len(node.keys) < (self._order + 1) // 2 - 1:
                # Allow slight slack of one below the strict bound: deletions
                # rebalance eagerly but the final merge may leave the root's
                # children near-minimal.
                raise AssertionError("leaf underflow")
            return 1
        if len(node.children) != len(node.keys) + 1:
            raise AssertionError("interior node key/children mismatch")
        depths = {self._check_node(child, is_root=False) for child in node.children}
        if len(depths) != 1:
            raise AssertionError("leaves are not at a uniform depth")
        return depths.pop() + 1


def sorted_insert(values: list[Any], item: Any) -> None:
    """Tiny helper kept for API symmetry with bisect.insort."""
    insort(values, item)
