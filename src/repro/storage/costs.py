"""Storage cost parameters (Equation 1 and Section VII-A/B).

The hybrid data model cost of a decomposition ``T = {T1..Tp}`` is

    cost(T) = sum_i  s1 + s2 * (r_i * c_i) + s3 * c_i + s4 * r_i

with ``s5`` the per-tuple cost of an RCV row (Appendix A-C1).  The paper
measures the following values on PostgreSQL 9.6:

    s1 = 8 KB (new table), s2 = 1 bit (per cell), s3 = 40 B (per column),
    s4 = 50 B (per row/tuple), s5 = 52 B (per RCV tuple)

and additionally studies a theoretical *ideal* storage engine where a
ROM/COM table costs ``cells + rows + columns`` units and an RCV tuple costs
3 units (Figure 13(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class CostParameters:
    """The storage cost constants of Equation 1 (all in abstract byte units)."""

    table_cost: float       # s1: fixed cost of instantiating a table
    cell_cost: float        # s2: cost of each (empty or filled) cell slot in ROM/COM
    column_cost: float      # s3: per-column schema cost
    row_cost: float         # s4: per-row (tuple) cost
    rcv_tuple_cost: float   # s5: per-tuple cost of an RCV row
    name: str = "custom"

    # ------------------------------------------------------------------ #
    def rom_cost(self, rows: int, columns: int) -> float:
        """Cost of one ROM table with ``rows`` x ``columns`` cells (Eq. 2)."""
        if rows <= 0 or columns <= 0:
            return 0.0
        return (
            self.table_cost
            + self.cell_cost * rows * columns
            + self.column_cost * columns
            + self.row_cost * rows
        )

    def com_cost(self, rows: int, columns: int) -> float:
        """Cost of one COM table: the transpose of :meth:`rom_cost`."""
        if rows <= 0 or columns <= 0:
            return 0.0
        return (
            self.table_cost
            + self.cell_cost * rows * columns
            + self.column_cost * rows
            + self.row_cost * columns
        )

    def rcv_cost(self, filled_cells: int, *, include_table: bool = True) -> float:
        """Cost of storing ``filled_cells`` cells in the (single) RCV table."""
        if filled_cells <= 0:
            return 0.0
        base = self.table_cost if include_table else 0.0
        return base + self.rcv_tuple_cost * filled_cells

    # ------------------------------------------------------------------ #
    def with_overrides(self, **overrides: float) -> "CostParameters":
        """A copy of these parameters with selected constants replaced."""
        return replace(self, **overrides)   # type: ignore[arg-type]


#: Constants measured on PostgreSQL 9.6 (Section VII-B a.): s1=8 KB, s2=1 bit,
#: s3=40 B, s4=50 B, s5=52 B.  Expressed in bytes (1 bit = 0.125 bytes).
POSTGRES_COSTS = CostParameters(
    table_cost=8 * 1024,
    cell_cost=0.125,
    column_cost=40.0,
    row_cost=50.0,
    rcv_tuple_cost=52.0,
    name="postgresql",
)

#: The "ideal database" cost model of Figure 13(b): a ROM/COM table costs
#: ``cells + rows + columns`` units; an RCV tuple costs 3 units; no table
#: instantiation overhead.
IDEAL_COSTS = CostParameters(
    table_cost=0.0,
    cell_cost=1.0,
    column_cost=1.0,
    row_cost=1.0,
    rcv_tuple_cost=3.0,
    name="ideal",
)


def hardness_reduction_costs(filled_cells: int) -> CostParameters:
    """The constants used in the NP-hardness reduction (Appendix A-A).

    ``s1=0, s2=2|C|+1, s3=s4=1`` — only useful for testing the reduction's
    algebra, not for storage planning.
    """
    return CostParameters(
        table_cost=0.0,
        cell_cost=2 * filled_cells + 1,
        column_cost=1.0,
        row_cost=1.0,
        rcv_tuple_cost=float("inf"),
        name="hardness-reduction",
    )
