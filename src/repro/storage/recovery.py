"""Redo-replay crash recovery for durable DataSpread workspaces.

``recover(directory)`` reconstructs a live engine from the on-disk state a
crash (or clean shutdown) left behind:

1. **Base state.**  The snapshot (if any) supplies the committed cells as
   of its generation; a missing snapshot means the empty generation-0
   workspace.
2. **Redo replay.**  The generation's write-ahead log is read up to the
   first torn frame, group markers are folded (a ``begin`` without its
   ``commit`` — an aborted or crash-interrupted batch — is discarded
   wholesale), and the committed records are replayed in log order into a
   flat cell map.  ``structural`` records re-key every cell through the
   same :class:`~repro.formula.rewrite.StructuralEdit` coordinate mapping
   the engine used, rewriting straddling formula references, so the replay
   is correct even when the crash landed between the structural record and
   the engine's own logged formula-text rewrites.
3. **Adopt and recompute.**  The cells are installed into a fresh
   :class:`~repro.engine.dataspread.DataSpread` (model write + dependency
   registration, no evaluation), then every formula re-evaluates in one
   topological pass.  Recomputing heals the window where a crash logged an
   edit but not yet its dependents' refreshed values — the recovered state
   is always *exactly* the one implied by the last durable commit point.
4. **Recovery barrier.**  The recovered engine re-attaches to the
   workspace in WAL mode and immediately checkpoints, folding the replayed
   log into a fresh snapshot generation — recovery never replays the same
   log twice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import CircularDependencyError, FormulaSyntaxError, RecoveryError
from repro.formula.parser import parse_formula
from repro.formula.rewrite import rewrite_formula
from repro.formula.serializer import to_formula
from repro.grid.address import CellAddress
from repro.grid.cell import Cell
from repro.storage.snapshot import load_snapshot, wal_path
from repro.storage.wal import committed_records, read_records, structural_edit_from

if TYPE_CHECKING:  # imported lazily at runtime (the engine imports this package)
    from repro.engine.dataspread import DataSpread

#: ``(value, formula)`` pairs keyed by (row, column).
CellMap = dict[tuple[int, int], tuple[Any, str | None]]


def replay_records(base: CellMap, records: list[dict[str, Any]]) -> CellMap:
    """Fold committed log records over a base cell map, in log order."""
    cells = dict(base)
    for record in records:
        kind = record.get("t")
        if kind == "cell":
            key = (record["r"], record["c"])
            value, formula = record.get("v"), record.get("f")
            if value is None and formula is None:
                cells.pop(key, None)  # a committed clear (or bare extent growth)
            else:
                cells[key] = (value, formula)
        elif kind == "structural":
            cells = _apply_structural(cells, record)
        elif kind == "mark":
            pass  # annotation only: no replay effect
        else:
            raise RecoveryError(f"unknown WAL record type {kind!r}")
    return cells


def _apply_structural(cells: CellMap, record: dict[str, Any]) -> CellMap:
    """Re-key a cell map through one structural edit, rewriting formulas.

    Mirrors the engine: cells on deleted lines vanish, survivors shift,
    and formula references shift with them (straddling ranges expand or
    contract; fully deleted referents collapse to ``#REF!``).
    """
    edit = structural_edit_from(record)
    remapped: CellMap = {}
    for (row, column), (value, formula) in cells.items():
        moved = edit.map_address(CellAddress(row, column))
        if moved is None:
            continue
        if formula is not None:
            formula = _rewrite_text(formula, edit)
        remapped[(moved.row, moved.column)] = (value, formula)
    return remapped


def _rewrite_text(formula: str, edit) -> str:
    try:
        node, changed = rewrite_formula(parse_formula(formula), edit)
    except FormulaSyntaxError:
        return formula  # unparseable text cannot reference moved cells
    return to_formula(node) if changed else formula


def recovered_cells(directory: str) -> CellMap:
    """The committed cell state a recovery of ``directory`` would adopt."""
    snapshot = load_snapshot(directory)
    generation = snapshot["generation"] if snapshot else 0
    base: CellMap = {}
    if snapshot:
        for row, column, value, formula in snapshot["cells"]:
            base[(row, column)] = (value, formula)
    records = committed_records(read_records(wal_path(directory, generation)))
    return replay_records(base, records)


def recover(directory: str, *, wal_options: dict[str, Any] | None = None,
            **engine_kwargs) -> "DataSpread":
    """Rebuild a live, durable :class:`DataSpread` from a workspace directory.

    ``engine_kwargs`` are forwarded to the engine constructor (e.g.
    ``async_recompute=True``); the mapping scheme defaults to the one the
    snapshot recorded.  The returned engine is attached to ``directory`` in
    WAL mode behind a fresh checkpoint.
    """
    from repro.engine.dataspread import DataSpread

    snapshot = load_snapshot(directory)
    if snapshot and "mapping_scheme" in snapshot.get("config", {}):
        engine_kwargs.setdefault("mapping_scheme", snapshot["config"]["mapping_scheme"])
    cells = recovered_cells(directory)

    spread = DataSpread(**engine_kwargs)
    formulas: list[CellAddress] = []
    for (row, column), (value, formula) in sorted(cells.items()):
        spread.model.update_cell(row, column, Cell(value=value, formula=formula))
        if formula is not None:
            address = CellAddress(row, column)
            try:
                node = spread.evaluator.parse(formula)
            except FormulaSyntaxError:
                continue  # adopt the text as-is; it can never evaluate
            spread.dependency_graph.register(address, node)
            formulas.append(address)
    if formulas:
        # One topological pass heals any crash window between a logged edit
        # and its dependents' refreshed values.  In async mode the adopted
        # values are already committed state, so recompute synchronously
        # rather than leaving the whole workspace queued stale.
        try:
            spread._recompute_batch(dict.fromkeys(formulas))
        except CircularDependencyError:
            pass  # a logged cycle keeps its logged values until edited away
        if spread.async_recompute:
            spread.flush_compute()
    spread._attach_wal(directory, wal_options=wal_options)
    return spread
