"""Pure-Python relational row-store substrate.

The paper builds on PostgreSQL 9.6.  Because this reproduction cannot ship a
real PostgreSQL instance, this package provides a small row-store with the
pieces the storage-engine evaluation actually depends on:

* per-table, per-tuple, per-column and per-cell storage overheads
  parameterised by the cost constants the paper measures
  (:mod:`repro.storage.costs`);
* heap files of slotted pages holding records addressed by stable tuple
  pointers (:mod:`repro.storage.heap`, :mod:`repro.storage.page`);
* a B+-tree index usable both as a key index and as the basis of the
  position-as-is baseline (:mod:`repro.storage.btree`);
* a catalog and a :class:`~repro.storage.database.Database` facade.
"""

from repro.storage.costs import CostParameters, POSTGRES_COSTS, IDEAL_COSTS
from repro.storage.tuples import Record, TuplePointer, record_payload_size
from repro.storage.page import Page, PAGE_SIZE_BYTES
from repro.storage.heap import HeapFile
from repro.storage.btree import BPlusTree
from repro.storage.catalog import Catalog, ColumnDef, TableSchema
from repro.storage.database import Database, Table
from repro.storage.wal import WALWriter, read_records, committed_records
from repro.storage.snapshot import load_snapshot, write_snapshot, wal_path
from repro.storage.recovery import recover, recovered_cells

__all__ = [
    "WALWriter",
    "read_records",
    "committed_records",
    "load_snapshot",
    "write_snapshot",
    "wal_path",
    "recover",
    "recovered_cells",
    "CostParameters",
    "POSTGRES_COSTS",
    "IDEAL_COSTS",
    "Record",
    "TuplePointer",
    "record_payload_size",
    "Page",
    "PAGE_SIZE_BYTES",
    "HeapFile",
    "BPlusTree",
    "Catalog",
    "ColumnDef",
    "TableSchema",
    "Database",
    "Table",
]
