"""Slotted pages for the heap-file layer."""

from __future__ import annotations

from typing import Iterator

from repro.errors import StorageError
from repro.storage.tuples import Record, record_payload_size

#: Page size matching PostgreSQL's default 8 KB block size.
PAGE_SIZE_BYTES = 8 * 1024

#: Fixed page header overhead (page header + line-pointer array slack).
PAGE_HEADER_BYTES = 24


class Page:
    """A slotted page: a bounded container of records with stable slot ids.

    Deleting a record leaves its slot as a tombstone (``None``) so that the
    slot ids of surviving records — and therefore tuple pointers — never
    change, which is what lets positional mappings avoid cascading updates.
    """

    def __init__(self, page_id: int, capacity_bytes: int = PAGE_SIZE_BYTES) -> None:
        self.page_id = page_id
        self.capacity_bytes = capacity_bytes
        self._slots: list[Record | None] = []
        self._used_bytes = PAGE_HEADER_BYTES
        self._live_bytes = PAGE_HEADER_BYTES

    # ------------------------------------------------------------------ #
    @property
    def used_bytes(self) -> int:
        """Bytes consumed on the page: header, live records, and the line
        pointers of every slot ever allocated (tombstones keep their 4-byte
        pointer so surviving slot ids stay stable)."""
        return self._used_bytes

    @property
    def live_bytes(self) -> int:
        """Bytes attributable to live records only (payloads + their line
        pointers + the header) — what the page would occupy with every
        tombstone reclaimed."""
        return self._live_bytes

    @property
    def dead_bytes(self) -> int:
        """Bytes held by tombstones (their orphaned line pointers)."""
        return self._used_bytes - self._live_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes still available on this page."""
        return self.capacity_bytes - self._used_bytes

    @property
    def slot_count(self) -> int:
        """Total slots allocated (including tombstones)."""
        return len(self._slots)

    @property
    def live_count(self) -> int:
        """Number of live (non-deleted) records."""
        return sum(1 for record in self._slots if record is not None)

    def has_room_for(self, record: Record) -> bool:
        """Whether ``record`` fits on this page."""
        return record_payload_size(record) + 4 <= self.free_bytes

    # ------------------------------------------------------------------ #
    def insert(self, record: Record) -> int:
        """Append ``record``; returns its slot id.  Raises when the page is full."""
        if not self.has_room_for(record):
            raise StorageError(f"page {self.page_id} has no room for a {record_payload_size(record)}-byte record")
        self._slots.append(record)
        self._used_bytes += record_payload_size(record) + 4
        self._live_bytes += record_payload_size(record) + 4
        return len(self._slots) - 1

    def read(self, slot_id: int) -> Record:
        """Return the record at ``slot_id``; raises for tombstones/bad slots."""
        record = self._slot(slot_id)
        if record is None:
            raise StorageError(f"slot {slot_id} of page {self.page_id} is deleted")
        return record

    def update(self, slot_id: int, record: Record) -> None:
        """Replace the record at ``slot_id`` in place."""
        old = self.read(slot_id)
        delta = record_payload_size(record) - record_payload_size(old)
        if delta > self.free_bytes:
            raise StorageError(f"updated record does not fit on page {self.page_id}")
        self._slots[slot_id] = record
        self._used_bytes += delta
        self._live_bytes += delta

    def delete(self, slot_id: int) -> None:
        """Tombstone the record at ``slot_id``.

        The payload bytes are freed but the slot's 4-byte line pointer
        stays allocated (and counted in ``used_bytes``) so surviving slot
        ids — and therefore tuple pointers — never move; ``compact``
        reclaims trailing pointers.
        """
        record = self.read(slot_id)
        self._slots[slot_id] = None
        self._used_bytes -= record_payload_size(record)
        self._live_bytes -= record_payload_size(record) + 4

    def compact(self) -> int:
        """Reclaim the line pointers of *trailing* tombstones.

        Interior tombstones must keep their pointers (dropping them would
        renumber later slots and invalidate live tuple pointers), but a
        run of tombstones at the tail of the slot array is safe to
        truncate.  Returns the number of bytes reclaimed.
        """
        reclaimed = 0
        while self._slots and self._slots[-1] is None:
            self._slots.pop()
            self._used_bytes -= 4
            reclaimed += 4
        return reclaimed

    def is_deleted(self, slot_id: int) -> bool:
        """Whether ``slot_id`` holds a tombstone."""
        return self._slot(slot_id) is None

    def records(self) -> Iterator[tuple[int, Record]]:
        """Iterate live ``(slot_id, record)`` pairs in slot order."""
        for slot_id, record in enumerate(self._slots):
            if record is not None:
                yield slot_id, record

    # ------------------------------------------------------------------ #
    def _slot(self, slot_id: int) -> Record | None:
        if slot_id < 0 or slot_id >= len(self._slots):
            raise StorageError(f"slot {slot_id} out of range on page {self.page_id}")
        return self._slots[slot_id]
