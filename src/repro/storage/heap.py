"""Heap files: an unordered collection of pages with stable tuple pointers."""

from __future__ import annotations

from typing import Iterator

from repro.errors import StorageError
from repro.storage.page import PAGE_HEADER_BYTES, PAGE_SIZE_BYTES, Page
from repro.storage.tuples import Record, TuplePointer, record_payload_size, value_size


class _ChainMarker:
    """A sentinel tagging overflow-chain links; never equal to user data."""

    __slots__ = ("_label",)

    def __init__(self, label: str) -> None:
        self._label = label

    def __repr__(self) -> str:  # a stable repr keeps size accounting exact
        return self._label


#: First field of the head / continuation link of a chained record.
_CHAIN_HEAD = _ChainMarker("__chain_head__")
_CHAIN_CONT = _ChainMarker("__chain_cont__")

#: Worst-case pointer used when sizing chain links before they exist.
_PROBE_POINTER = TuplePointer(page_id=1 << 40, slot_id=1 << 40)


def _is_chain_link(record: Record) -> bool:
    return bool(record) and (record[0] is _CHAIN_HEAD or record[0] is _CHAIN_CONT)


class HeapFile:
    """An append-friendly heap of slotted pages.

    Records are addressed by :class:`TuplePointer`; pointers remain valid for
    the lifetime of the record regardless of other inserts and deletes, which
    is the property positional mappings rely on.

    A record wider than one page is stored as an *overflow chain* (the moral
    equivalent of PostgreSQL's TOAST): its fields are split across linked
    continuation records, each of which fits a page, and the head link's
    pointer addresses the logical record.  Chaining is transparent —
    ``read``/``scan`` reassemble, ``update``/``delete`` release every link —
    so column/row-oriented grid stores can hold arbitrarily long lines.
    Only a single *field* larger than a page remains unstorable.
    """

    def __init__(self, page_capacity_bytes: int = PAGE_SIZE_BYTES) -> None:
        self._page_capacity = page_capacity_bytes
        self._pages: list[Page] = []
        self._live_records = 0
        self._insert_count = 0
        self._read_count = 0

    # ------------------------------------------------------------------ #
    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    @property
    def record_count(self) -> int:
        """Number of live records."""
        return self._live_records

    @property
    def stats(self) -> dict[str, int]:
        """Operation counters (used by access-cost accounting in benches)."""
        return {"inserts": self._insert_count, "reads": self._read_count, "pages": len(self._pages)}

    # ------------------------------------------------------------------ #
    def insert(self, record: Record) -> TuplePointer:
        """Insert ``record``, allocating a new page when the last one is full.

        A record too wide for one page is stored as an overflow chain; the
        returned pointer addresses the whole logical record either way.
        """
        pointer = self._store(record)
        self._live_records += 1
        self._insert_count += 1
        return pointer

    def read(self, pointer: TuplePointer) -> Record:
        """Fetch the (reassembled) record at ``pointer``."""
        self._read_count += 1
        return self._fetch(pointer)

    def update(self, pointer: TuplePointer, record: Record) -> TuplePointer:
        """Update in place when possible; otherwise relocate and return the new pointer."""
        page = self._page(pointer)
        existing = page.read(pointer.slot_id)
        if not _is_chain_link(existing) and self._fits_one_page(record):
            try:
                page.update(pointer.slot_id, record)
                return pointer
            except StorageError:
                pass
        self._release(pointer)
        self._live_records -= 1
        return self.insert(record)

    def delete(self, pointer: TuplePointer) -> None:
        """Delete the record at ``pointer`` (all links, for a chain)."""
        self._release(pointer)
        self._live_records -= 1

    def scan(self) -> Iterator[tuple[TuplePointer, Record]]:
        """Iterate all live *logical* records in physical order.

        Chain heads are reassembled and yielded at their head pointer;
        continuation links are skipped.
        """
        for page in self._pages:
            for slot_id, record in page.records():
                if record and record[0] is _CHAIN_CONT:
                    continue
                pointer = TuplePointer(page_id=page.page_id, slot_id=slot_id)
                if record and record[0] is _CHAIN_HEAD:
                    yield pointer, self._fetch(pointer)
                else:
                    yield pointer, record

    # ------------------------------------------------------------------ #
    # physical placement and overflow chains
    # ------------------------------------------------------------------ #
    def _fits_one_page(self, record: Record) -> bool:
        return (record_payload_size(record) + 4
                <= self._page_capacity - PAGE_HEADER_BYTES)

    def _place(self, record: Record) -> TuplePointer:
        """Put one physical record on a page; no chain handling."""
        if not self._pages or not self._pages[-1].has_room_for(record):
            self._pages.append(Page(page_id=len(self._pages), capacity_bytes=self._page_capacity))
        page = self._pages[-1]
        if not page.has_room_for(record):
            raise StorageError("record larger than a page")
        slot_id = page.insert(record)
        return TuplePointer(page_id=page.page_id, slot_id=slot_id)

    def _store(self, record: Record) -> TuplePointer:
        if self._fits_one_page(record):
            return self._place(record)
        chunks = self._chunk_fields(record)
        next_pointer: TuplePointer | None = None
        for chunk in reversed(chunks[1:]):
            next_pointer = self._place((_CHAIN_CONT, next_pointer, *chunk))
        return self._place((_CHAIN_HEAD, next_pointer, *chunks[0]))

    def _chunk_fields(self, record: Record) -> list[list]:
        """Greedily pack fields into link-sized chunks (each fits a page).

        Runs in one pass with an additive size accumulator —
        ``record_payload_size`` is a sum over fields, so tracking the
        running total matches sizing the candidate link exactly.
        """
        budget = self._page_capacity - PAGE_HEADER_BYTES - 4
        overhead = record_payload_size((_CHAIN_CONT, _PROBE_POINTER))
        chunks: list[list] = []
        current: list = []
        used = overhead
        for field in record:
            size = value_size(field)
            if current and used + size > budget:
                chunks.append(current)
                current = []
                used = overhead
            if used + size > budget:
                raise StorageError("record field larger than a page")
            current.append(field)
            used += size
        chunks.append(current)
        return chunks

    def _fetch(self, pointer: TuplePointer) -> Record:
        record = self._page(pointer).read(pointer.slot_id)
        if record and record[0] is _CHAIN_CONT:
            raise StorageError("pointer addresses an overflow continuation")
        if record and record[0] is _CHAIN_HEAD:
            fields = list(record[2:])
            next_pointer = record[1]
            while next_pointer is not None:
                link = self._page(next_pointer).read(next_pointer.slot_id)
                fields.extend(link[2:])
                next_pointer = link[1]
            return tuple(fields)
        return record

    def _release(self, pointer: TuplePointer) -> None:
        """Physically delete the record at ``pointer`` and any chain links."""
        page = self._page(pointer)
        record = page.read(pointer.slot_id)
        page.delete(pointer.slot_id)
        if record and record[0] is _CHAIN_HEAD:
            next_pointer = record[1]
            while next_pointer is not None:
                link = self._page(next_pointer).read(next_pointer.slot_id)
                self._page(next_pointer).delete(next_pointer.slot_id)
                next_pointer = link[1]

    # ------------------------------------------------------------------ #
    def used_bytes(self) -> int:
        """Total bytes consumed by allocated pages (full pages, like a real heap)."""
        return len(self._pages) * self._page_capacity

    def live_bytes(self) -> int:
        """Bytes attributable to live records (payloads + line pointers +
        page headers) — tombstones excluded."""
        return sum(page.live_bytes for page in self._pages)

    def dead_bytes(self) -> int:
        """Bytes held by tombstoned slots across all pages."""
        return sum(page.dead_bytes for page in self._pages)

    def vacuum(self) -> dict[str, int]:
        """Compact the heap without moving any live record.

        Tuple pointers of live records stay valid: each page truncates only
        its *trailing* tombstone pointers, and only *trailing* fully-dead
        pages are released (page ids are list indices, so interior pages
        must stay put).  Pointers to vacuumed records were already dead.
        Returns ``{"bytes_reclaimed", "pages_dropped"}``.
        """
        reclaimed = sum(page.compact() for page in self._pages)
        dropped = 0
        while self._pages and self._pages[-1].live_count == 0:
            self._pages.pop()
            dropped += 1
        return {"bytes_reclaimed": reclaimed, "pages_dropped": dropped}

    def _page(self, pointer: TuplePointer) -> Page:
        if pointer.page_id < 0 or pointer.page_id >= len(self._pages):
            raise StorageError(f"page {pointer.page_id} does not exist")
        return self._pages[pointer.page_id]
