"""Heap files: an unordered collection of pages with stable tuple pointers."""

from __future__ import annotations

from typing import Iterator

from repro.errors import StorageError
from repro.storage.page import PAGE_SIZE_BYTES, Page
from repro.storage.tuples import Record, TuplePointer


class HeapFile:
    """An append-friendly heap of slotted pages.

    Records are addressed by :class:`TuplePointer`; pointers remain valid for
    the lifetime of the record regardless of other inserts and deletes, which
    is the property positional mappings rely on.
    """

    def __init__(self, page_capacity_bytes: int = PAGE_SIZE_BYTES) -> None:
        self._page_capacity = page_capacity_bytes
        self._pages: list[Page] = []
        self._live_records = 0
        self._insert_count = 0
        self._read_count = 0

    # ------------------------------------------------------------------ #
    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    @property
    def record_count(self) -> int:
        """Number of live records."""
        return self._live_records

    @property
    def stats(self) -> dict[str, int]:
        """Operation counters (used by access-cost accounting in benches)."""
        return {"inserts": self._insert_count, "reads": self._read_count, "pages": len(self._pages)}

    # ------------------------------------------------------------------ #
    def insert(self, record: Record) -> TuplePointer:
        """Insert ``record``, allocating a new page when the last one is full."""
        if not self._pages or not self._pages[-1].has_room_for(record):
            self._pages.append(Page(page_id=len(self._pages), capacity_bytes=self._page_capacity))
        page = self._pages[-1]
        if not page.has_room_for(record):
            raise StorageError("record larger than a page")
        slot_id = page.insert(record)
        self._live_records += 1
        self._insert_count += 1
        return TuplePointer(page_id=page.page_id, slot_id=slot_id)

    def read(self, pointer: TuplePointer) -> Record:
        """Fetch the record at ``pointer``."""
        self._read_count += 1
        return self._page(pointer).read(pointer.slot_id)

    def update(self, pointer: TuplePointer, record: Record) -> TuplePointer:
        """Update in place when possible; otherwise relocate and return the new pointer."""
        page = self._page(pointer)
        try:
            page.update(pointer.slot_id, record)
            return pointer
        except StorageError:
            page.delete(pointer.slot_id)
            self._live_records -= 1
            return self.insert(record)

    def delete(self, pointer: TuplePointer) -> None:
        """Delete the record at ``pointer``."""
        self._page(pointer).delete(pointer.slot_id)
        self._live_records -= 1

    def scan(self) -> Iterator[tuple[TuplePointer, Record]]:
        """Iterate all live records in physical order."""
        for page in self._pages:
            for slot_id, record in page.records():
                yield TuplePointer(page_id=page.page_id, slot_id=slot_id), record

    # ------------------------------------------------------------------ #
    def used_bytes(self) -> int:
        """Total bytes consumed by allocated pages (full pages, like a real heap)."""
        return len(self._pages) * self._page_capacity

    def live_bytes(self) -> int:
        """Bytes attributable to live records (payloads + line pointers +
        page headers) — tombstones excluded."""
        return sum(page.live_bytes for page in self._pages)

    def dead_bytes(self) -> int:
        """Bytes held by tombstoned slots across all pages."""
        return sum(page.dead_bytes for page in self._pages)

    def vacuum(self) -> dict[str, int]:
        """Compact the heap without moving any live record.

        Tuple pointers of live records stay valid: each page truncates only
        its *trailing* tombstone pointers, and only *trailing* fully-dead
        pages are released (page ids are list indices, so interior pages
        must stay put).  Pointers to vacuumed records were already dead.
        Returns ``{"bytes_reclaimed", "pages_dropped"}``.
        """
        reclaimed = sum(page.compact() for page in self._pages)
        dropped = 0
        while self._pages and self._pages[-1].live_count == 0:
            self._pages.pop()
            dropped += 1
        return {"bytes_reclaimed": reclaimed, "pages_dropped": dropped}

    def _page(self, pointer: TuplePointer) -> Page:
        if pointer.page_id < 0 or pointer.page_id >= len(self._pages):
            raise StorageError(f"page {pointer.page_id} does not exist")
        return self._pages[pointer.page_id]
