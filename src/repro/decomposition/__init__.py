"""Hybrid data-model optimisation (Section IV).

Given the filled cells of a sheet, these algorithms pick a set of rectangular
regions, each stored with one primitive data model, minimising the storage
cost of Equation 1:

* :func:`~repro.decomposition.recursive_dp.decompose_dp` — the optimal
  recursive-decomposition dynamic program (PTIME within the recursive
  subclass; Theorem 2), run on the weighted grid by default (Theorem 5).
* :func:`~repro.decomposition.greedy.decompose_greedy` — the O(n^2) greedy
  heuristic (Section IV-E).
* :func:`~repro.decomposition.greedy.decompose_aggressive` — the aggressive
  greedy variant that always splits and assembles the best plan on backtrack.
* :mod:`~repro.decomposition.bounds` — the OPT lower bound used in Figure 13
  and the Theorem-4 upper bound on table counts used in Figure 14.
* :mod:`~repro.decomposition.incremental` — incremental maintenance with the
  migration/storage trade-off factor η (Appendix A-C2, Figure 26).
"""

from repro.decomposition.cost import RegionCostModel, primitive_costs
from repro.decomposition.result import DecompositionResult, DecomposedRegion
from repro.decomposition.recursive_dp import decompose_dp
from repro.decomposition.greedy import decompose_greedy, decompose_aggressive
from repro.decomposition.primitives import evaluate_primitive_models
from repro.decomposition.bounds import optimal_lower_bound, table_count_upper_bound
from repro.decomposition.incremental import incremental_decompose, migration_cost

__all__ = [
    "RegionCostModel",
    "primitive_costs",
    "DecompositionResult",
    "DecomposedRegion",
    "decompose_dp",
    "decompose_greedy",
    "decompose_aggressive",
    "evaluate_primitive_models",
    "optimal_lower_bound",
    "table_count_upper_bound",
    "incremental_decompose",
    "migration_cost",
]
