"""Region cost model over a weighted grid.

All decomposition algorithms share this helper: it answers, in O(1) after an
O(R*C) precomputation, how many filled cells a weighted sub-rectangle holds,
what its original (uncollapsed) dimensions are, and what it would cost to
store it as a single ROM, COM or RCV table (Equations 1-2 and the Appendix
A-C1 extensions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Sequence

import numpy as np

from repro.grid.range import RangeRef
from repro.grid.weighted import WeightedGrid
from repro.models.base import ModelKind
from repro.storage.costs import CostParameters

#: Model kinds the optimiser may pick for a region, in preference order for
#: tie-breaking (ROM preferred, matching the paper's Hybrid-ROM baseline).
DEFAULT_KINDS: tuple[ModelKind, ...] = (ModelKind.ROM, ModelKind.COM, ModelKind.RCV)


@dataclass(frozen=True, slots=True)
class RegionChoice:
    """The cheapest single-table representation of a rectangle."""

    kind: ModelKind
    cost: float
    filled: int
    rows: int
    columns: int


class RegionCostModel:
    """Answers cost queries for weighted sub-rectangles of a sheet."""

    def __init__(
        self,
        grid: WeightedGrid,
        costs: CostParameters,
        *,
        kinds: Sequence[ModelKind] = DEFAULT_KINDS,
        max_columns: int | None = None,
    ) -> None:
        self.grid = grid
        self.costs = costs
        self.kinds = tuple(kinds)
        #: Column-count limit of the backing database (Appendix A-C4); a ROM
        #: table wider than this (or a COM table taller) costs infinity.
        self.max_columns = max_columns
        rows, columns = grid.shape
        # 2-D prefix sums of the occupancy matrix for O(1) filled-cell counts.
        self._prefix = np.zeros((rows + 1, columns + 1), dtype=np.int64)
        if rows and columns:
            self._prefix[1:, 1:] = np.cumsum(np.cumsum(grid.occupancy, axis=0), axis=1)
        # Prefix sums of weights for O(1) original-dimension queries.
        self._row_prefix = np.concatenate(([0], np.cumsum(grid.row_weights))).astype(np.int64)
        self._col_prefix = np.concatenate(([0], np.cumsum(grid.col_weights))).astype(np.int64)

    # ------------------------------------------------------------------ #
    # geometry queries (0-based inclusive weighted indices)
    # ------------------------------------------------------------------ #
    def filled(self, top: int, left: int, bottom: int, right: int) -> int:
        """Number of original filled cells in the weighted rectangle."""
        return int(
            self._prefix[bottom + 1, right + 1]
            - self._prefix[top, right + 1]
            - self._prefix[bottom + 1, left]
            + self._prefix[top, left]
        )

    def original_dimensions(self, top: int, left: int, bottom: int, right: int) -> tuple[int, int]:
        """(rows, columns) of the rectangle in original (uncollapsed) units."""
        rows = int(self._row_prefix[bottom + 1] - self._row_prefix[top])
        columns = int(self._col_prefix[right + 1] - self._col_prefix[left])
        return rows, columns

    def original_range(self, top: int, left: int, bottom: int, right: int) -> RangeRef:
        """The absolute sheet range covered by the weighted rectangle."""
        row_start, row_end = self.grid.original_row_bounds(top, bottom)
        col_start, col_end = self.grid.original_column_bounds(left, right)
        return RangeRef(row_start, col_start, row_end, col_end)

    # ------------------------------------------------------------------ #
    # cost queries
    # ------------------------------------------------------------------ #
    def rom_cost(self, top: int, left: int, bottom: int, right: int) -> float:
        """Cost of storing the rectangle as a single ROM table (Eq. 2)."""
        rows, columns = self.original_dimensions(top, left, bottom, right)
        if self.max_columns is not None and columns > self.max_columns:
            return float("inf")
        return self.costs.rom_cost(rows, columns)

    def com_cost(self, top: int, left: int, bottom: int, right: int) -> float:
        """Cost of storing the rectangle as a single COM table."""
        rows, columns = self.original_dimensions(top, left, bottom, right)
        if self.max_columns is not None and rows > self.max_columns:
            return float("inf")
        return self.costs.com_cost(rows, columns)

    def rcv_cost(self, top: int, left: int, bottom: int, right: int) -> float:
        """Cost of storing the rectangle's filled cells in the shared RCV table.

        The per-region cost excludes the RCV table-instantiation cost: the
        paper notes all RCV regions can share one physical table, so that
        fixed cost is charged at most once per plan (by the caller).
        """
        return self.costs.rcv_cost(
            self.filled(top, left, bottom, right), include_table=False
        )

    # ------------------------------------------------------------------ #
    # vectorised helpers for the greedy algorithms
    # ------------------------------------------------------------------ #
    def _vector_best_cost(
        self, filled: np.ndarray, rows: np.ndarray, columns: np.ndarray
    ) -> np.ndarray:
        """Best single-table cost, elementwise, with empty regions costing 0."""
        best = np.full(filled.shape, np.inf)
        if ModelKind.ROM in self.kinds:
            rom = (
                self.costs.table_cost
                + self.costs.cell_cost * rows * columns
                + self.costs.column_cost * columns
                + self.costs.row_cost * rows
            )
            if self.max_columns is not None:
                rom = np.where(columns > self.max_columns, np.inf, rom)
            best = np.minimum(best, rom)
        if ModelKind.COM in self.kinds:
            com = (
                self.costs.table_cost
                + self.costs.cell_cost * rows * columns
                + self.costs.column_cost * rows
                + self.costs.row_cost * columns
            )
            if self.max_columns is not None:
                com = np.where(rows > self.max_columns, np.inf, com)
            best = np.minimum(best, com)
        if ModelKind.RCV in self.kinds:
            best = np.minimum(best, self.costs.rcv_tuple_cost * filled)
        return np.where(filled == 0, 0.0, best)

    def horizontal_split_costs(self, top: int, left: int, bottom: int, right: int) -> np.ndarray:
        """For every horizontal cut, the summed single-table cost of the two halves.

        Entry ``i`` corresponds to cutting between weighted rows ``top + i``
        and ``top + i + 1``.  Returns an empty array for 1-row rectangles.
        """
        if bottom == top:
            return np.empty(0)
        cuts = np.arange(top, bottom)
        column_span = float(self._col_prefix[right + 1] - self._col_prefix[left])
        total_filled = self.filled(top, left, bottom, right)
        upper_filled = (
            self._prefix[cuts + 1, right + 1]
            - self._prefix[top, right + 1]
            - self._prefix[cuts + 1, left]
            + self._prefix[top, left]
        ).astype(np.float64)
        lower_filled = total_filled - upper_filled
        upper_rows = (self._row_prefix[cuts + 1] - self._row_prefix[top]).astype(np.float64)
        total_rows = float(self._row_prefix[bottom + 1] - self._row_prefix[top])
        lower_rows = total_rows - upper_rows
        columns = np.full(cuts.shape, column_span)
        return (
            self._vector_best_cost(upper_filled, upper_rows, columns)
            + self._vector_best_cost(lower_filled, lower_rows, columns)
        )

    def vertical_split_costs(self, top: int, left: int, bottom: int, right: int) -> np.ndarray:
        """For every vertical cut, the summed single-table cost of the two halves."""
        if right == left:
            return np.empty(0)
        cuts = np.arange(left, right)
        row_span = float(self._row_prefix[bottom + 1] - self._row_prefix[top])
        total_filled = self.filled(top, left, bottom, right)
        left_filled = (
            self._prefix[bottom + 1, cuts + 1]
            - self._prefix[top, cuts + 1]
            - self._prefix[bottom + 1, left]
            + self._prefix[top, left]
        ).astype(np.float64)
        right_filled = total_filled - left_filled
        left_columns = (self._col_prefix[cuts + 1] - self._col_prefix[left]).astype(np.float64)
        total_columns = float(self._col_prefix[right + 1] - self._col_prefix[left])
        right_columns = total_columns - left_columns
        rows = np.full(cuts.shape, row_span)
        return (
            self._vector_best_cost(left_filled, rows, left_columns)
            + self._vector_best_cost(right_filled, rows, right_columns)
        )

    def best_choice(self, top: int, left: int, bottom: int, right: int) -> RegionChoice:
        """The cheapest allowed single-table representation of the rectangle."""
        filled = self.filled(top, left, bottom, right)
        rows, columns = self.original_dimensions(top, left, bottom, right)
        best_kind = ModelKind.ROM
        best_cost = float("inf")
        for kind in self.kinds:
            if kind is ModelKind.ROM:
                cost = self.rom_cost(top, left, bottom, right)
            elif kind is ModelKind.COM:
                cost = self.com_cost(top, left, bottom, right)
            elif kind is ModelKind.RCV:
                cost = self.rcv_cost(top, left, bottom, right)
            else:  # pragma: no cover - TOM regions are never chosen by the optimiser
                continue
            if cost < best_cost:
                best_cost = cost
                best_kind = kind
        return RegionChoice(
            kind=best_kind, cost=best_cost, filled=filled, rows=rows, columns=columns
        )


def primitive_costs(
    coordinates: Collection[tuple[int, int]], costs: CostParameters
) -> dict[str, float]:
    """Storage cost of the whole sheet under each primitive model.

    Used as the ROM/COM/RCV baselines of Figures 13, 17 and 25.
    """
    coordinates = set(coordinates)
    if not coordinates:
        return {"rom": 0.0, "com": 0.0, "rcv": 0.0}
    rows = [row for row, _ in coordinates]
    columns = [column for _, column in coordinates]
    height = max(rows) - min(rows) + 1
    width = max(columns) - min(columns) + 1
    return {
        "rom": costs.rom_cost(height, width),
        "com": costs.com_cost(height, width),
        "rcv": costs.rcv_cost(len(coordinates)),
    }
