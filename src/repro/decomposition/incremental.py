"""Incremental maintenance of hybrid decompositions (Appendix A-C2, Fig. 26).

After a batch of user edits the sheet may have drifted away from the layout
the current decomposition was optimised for.  Re-optimising from scratch and
migrating all cells is expensive, so the incremental optimiser minimises

    cost(T) + eta * migCost(T, T_old)

where ``migCost`` counts the populated cells that must be moved into tables
that do not already exist in the old plan, and ``eta`` trades storage
optimality against migration effort:

* ``eta -> 0``  — always adopt the storage-optimal plan (maximum migration);
* ``eta`` large — keep the old plan whenever possible (zero migration).
"""

from __future__ import annotations

import time
from typing import Collection, Sequence

from repro.decomposition.greedy import decompose_aggressive, decompose_greedy
from repro.decomposition.recursive_dp import decompose_dp
from repro.decomposition.result import DecomposedRegion, DecompositionResult
from repro.grid.range import RangeRef
from repro.models.base import ModelKind
from repro.storage.costs import CostParameters

_ALGORITHMS = {
    "dp": decompose_dp,
    "greedy": decompose_greedy,
    "aggressive": decompose_aggressive,
}


def migration_cost(
    coordinates: Collection[tuple[int, int]],
    old_regions: Sequence[DecomposedRegion] | Sequence[tuple[RangeRef, ModelKind]],
    new_regions: Sequence[DecomposedRegion],
) -> int:
    """Populated cells that must be migrated to adopt ``new_regions``.

    A region of the new plan is free when the old plan contains a table with
    exactly the same rectangle (the paper only reuses exact matches); all
    populated cells of every other new region must be migrated.
    """
    old_ranges = {_region_range(entry) for entry in old_regions}
    coordinates = set(coordinates)
    moved = 0
    for region in new_regions:
        if region.range in old_ranges:
            continue
        moved += sum(
            1
            for row, column in coordinates
            if region.range.contains_range(RangeRef(row, column, row, column))
        )
    return moved


def incremental_decompose(
    coordinates: Collection[tuple[int, int]],
    old_regions: Sequence[DecomposedRegion] | Sequence[tuple[RangeRef, ModelKind]],
    costs: CostParameters,
    *,
    eta: float = 1.0,
    algorithm: str = "aggressive",
    **algorithm_options,
) -> DecompositionResult:
    """Choose between keeping the old plan and adopting a re-optimised plan.

    The candidate new plan is produced by the chosen decomposition algorithm;
    the old plan is scored on the *current* cells (its regions may now cover
    cells poorly).  Whichever minimises ``storage + eta * migration`` wins.
    The returned result's metadata records the migration cost and whether a
    migration was performed, which is what Figure 26 plots.
    """
    started = time.perf_counter()
    coordinates = set(coordinates)
    try:
        optimiser = _ALGORITHMS[algorithm]
    except KeyError as exc:
        raise ValueError(f"unknown algorithm {algorithm!r}") from exc

    candidate = optimiser(coordinates, costs, **algorithm_options)
    candidate_migration = migration_cost(coordinates, old_regions, candidate.regions)
    candidate_total = candidate.cost + eta * candidate_migration

    keep_regions = [_as_decomposed(entry, coordinates, costs) for entry in old_regions]
    keep_cost = sum(region.cost for region in keep_regions)
    uncovered = _uncovered_cells(coordinates, keep_regions)
    # Cells outside every existing table fall into the shared RCV table.
    keep_cost += costs.rcv_cost(len(uncovered), include_table=not any(
        region.kind is ModelKind.RCV for region in keep_regions
    )) if uncovered else 0.0
    keep_total = keep_cost  # keeping the plan migrates nothing

    if candidate_total < keep_total:
        chosen_regions = candidate.regions
        chosen_cost = candidate.cost
        migrated = candidate_migration
        migrated_flag = True
    else:
        chosen_regions = keep_regions
        chosen_cost = keep_cost
        migrated = 0
        migrated_flag = False

    return DecompositionResult(
        algorithm=f"incremental-{algorithm}",
        regions=list(chosen_regions),
        cost=chosen_cost,
        costs=costs,
        elapsed_seconds=time.perf_counter() - started,
        metadata={
            "eta": eta,
            "migrated": migrated_flag,
            "migration_cells": migrated,
            "objective": min(candidate_total, keep_total),
            "candidate_cost": candidate.cost,
            "keep_cost": keep_cost,
        },
    )


# ---------------------------------------------------------------------- #
def _region_range(entry: DecomposedRegion | tuple[RangeRef, ModelKind]) -> RangeRef:
    if isinstance(entry, DecomposedRegion):
        return entry.range
    return entry[0]


def _region_kind(entry: DecomposedRegion | tuple[RangeRef, ModelKind]) -> ModelKind:
    if isinstance(entry, DecomposedRegion):
        return entry.kind
    return entry[1]


def _as_decomposed(
    entry: DecomposedRegion | tuple[RangeRef, ModelKind],
    coordinates: set[tuple[int, int]],
    costs: CostParameters,
) -> DecomposedRegion:
    region = _region_range(entry)
    kind = _region_kind(entry)
    filled = sum(
        1 for row, column in coordinates
        if region.top <= row <= region.bottom and region.left <= column <= region.right
    )
    if kind is ModelKind.COM:
        cost = costs.com_cost(region.rows, region.columns)
    elif kind is ModelKind.RCV:
        cost = costs.rcv_cost(filled, include_table=False)
    else:
        cost = costs.rom_cost(region.rows, region.columns)
    return DecomposedRegion(range=region, kind=kind, cost=cost, filled_cells=filled)


def _uncovered_cells(
    coordinates: set[tuple[int, int]], regions: Sequence[DecomposedRegion]
) -> set[tuple[int, int]]:
    uncovered = set()
    for row, column in coordinates:
        covered = any(
            region.range.top <= row <= region.range.bottom
            and region.range.left <= column <= region.range.right
            for region in regions
        )
        if not covered:
            uncovered.add((row, column))
    return uncovered
