"""Optimal recursive-decomposition dynamic programming (Section IV-D).

The DP considers every weighted sub-rectangle of the sheet's bounding box and
chooses the cheapest of: not storing it (when empty), storing it as a single
table, or cutting it horizontally or vertically and recursing.  Run on the
weighted grid this is optimal within the class of recursive decompositions
(Theorems 2 and 5).
"""

from __future__ import annotations

import sys
import time
from typing import Collection, Sequence

from repro.decomposition.cost import DEFAULT_KINDS, RegionCostModel
from repro.decomposition.dp_vectorized import solve_vectorized
from repro.decomposition.result import DecomposedRegion, DecompositionResult
from repro.grid.weighted import WeightedGrid
from repro.models.base import ModelKind
from repro.storage.costs import CostParameters

#: Weighted grids larger than this (in weighted cells) are rejected to keep
#: the O(n^5) DP tractable; callers should fall back to the greedy variants.
DEFAULT_MAX_WEIGHTED_CELLS = 4_096


def decompose_dp(
    coordinates: Collection[tuple[int, int]],
    costs: CostParameters,
    *,
    kinds: Sequence[ModelKind] = DEFAULT_KINDS,
    use_weighted: bool = True,
    max_weighted_cells: int = DEFAULT_MAX_WEIGHTED_CELLS,
    max_columns: int | None = None,
    time_budget_seconds: float | None = None,
    engine: str = "vectorized",
) -> DecompositionResult:
    """Optimal recursive decomposition of the filled cells.

    Parameters
    ----------
    coordinates:
        Filled (row, column) pairs of the sheet.
    costs:
        The storage cost constants.
    kinds:
        Primitive model kinds the plan may use.
    use_weighted:
        Collapse structurally identical rows/columns first (Theorem 5: no
        loss of optimality, large speed-up).
    max_weighted_cells:
        Refuse grids whose weighted area exceeds this bound.
    max_columns:
        Database column-count limit (Appendix A-C4); ``None`` disables it.
    time_budget_seconds:
        Abort (raising ``TimeoutError``) when the DP exceeds this budget,
        mirroring the paper's 10-minute cut-off for huge sheets.  Only
        enforced by the recursive engine.
    engine:
        ``"vectorized"`` (default, numpy-based) or ``"recursive"`` (the
        textbook memoised formulation).  Both produce the same optimum.
    """
    if engine not in ("vectorized", "recursive"):
        raise ValueError(f"unknown DP engine {engine!r}")
    started = time.perf_counter()
    coordinates = set(coordinates)
    if not coordinates:
        return DecompositionResult(
            algorithm="dp", regions=[], cost=0.0, costs=costs, elapsed_seconds=0.0
        )
    grid = (
        WeightedGrid.from_coordinates(coordinates)
        if use_weighted
        else WeightedGrid.dense_from_coordinates(coordinates)
    )
    rows, columns = grid.shape
    if rows * columns > max_weighted_cells:
        raise ValueError(
            f"weighted grid of {rows}x{columns} cells exceeds the DP budget of "
            f"{max_weighted_cells}; use the greedy algorithms instead"
        )
    deadline = None if time_budget_seconds is None else started + time_budget_seconds

    def run(pass_kinds: Sequence[ModelKind]) -> tuple[float, list[DecomposedRegion], int]:
        model = RegionCostModel(grid, costs, kinds=pass_kinds, max_columns=max_columns)
        if engine == "vectorized":
            raw_cost, plan = solve_vectorized(model)
            total, plan = _finalize_rcv(raw_cost, plan, costs)
            return total, plan, rows * columns
        memo: dict[tuple[int, int, int, int], float] = {}
        choice: dict[tuple[int, int, int, int], tuple[str, int]] = {}
        # The recursion depth can reach rows + columns; make room for it.
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10_000))
        try:
            raw_cost = _optimal(0, 0, rows - 1, columns - 1, model, memo, choice, deadline)
            plan = _reconstruct(0, 0, rows - 1, columns - 1, model, choice)
        finally:
            sys.setrecursionlimit(old_limit)
        total, plan = _finalize_rcv(raw_cost, plan, costs)
        return total, plan, len(memo)

    # RCV regions share a single physical table whose fixed cost is charged
    # up-front; the per-region search therefore under-counts RCV by s1.  To
    # stay optimal we compare the RCV-enabled plan (plus the up-front charge)
    # with the best plan that avoids RCV altogether.
    total_cost, regions, subproblems = run(kinds)
    non_rcv_kinds = tuple(kind for kind in kinds if kind is not ModelKind.RCV)
    if (
        ModelKind.RCV in kinds
        and non_rcv_kinds
        and any(region.kind is ModelKind.RCV for region in regions)
    ):
        alt_cost, alt_regions, alt_subproblems = run(non_rcv_kinds)
        subproblems += alt_subproblems
        if alt_cost < total_cost:
            total_cost, regions = alt_cost, alt_regions

    return DecompositionResult(
        algorithm="dp",
        regions=regions,
        cost=total_cost,
        costs=costs,
        elapsed_seconds=time.perf_counter() - started,
        metadata={"weighted_shape": (rows, columns), "subproblems": subproblems},
    )


# ---------------------------------------------------------------------- #
def _optimal(
    top: int,
    left: int,
    bottom: int,
    right: int,
    model: RegionCostModel,
    memo: dict,
    choice: dict,
    deadline: float | None,
) -> float:
    key = (top, left, bottom, right)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if deadline is not None and time.perf_counter() > deadline:
        raise TimeoutError("recursive-decomposition DP exceeded its time budget")
    filled = model.filled(top, left, bottom, right)
    if filled == 0:
        memo[key] = 0.0
        choice[key] = ("empty", -1)
        return 0.0
    best = model.best_choice(top, left, bottom, right)
    best_cost = best.cost
    best_action: tuple[str, int] = ("table", -1)
    # Horizontal cuts: between weighted rows i and i+1.
    for cut in range(top, bottom):
        cost = (
            _optimal(top, left, cut, right, model, memo, choice, deadline)
            + _optimal(cut + 1, left, bottom, right, model, memo, choice, deadline)
        )
        if cost < best_cost:
            best_cost = cost
            best_action = ("horizontal", cut)
    # Vertical cuts: between weighted columns j and j+1.
    for cut in range(left, right):
        cost = (
            _optimal(top, left, bottom, cut, model, memo, choice, deadline)
            + _optimal(top, cut + 1, bottom, right, model, memo, choice, deadline)
        )
        if cost < best_cost:
            best_cost = cost
            best_action = ("vertical", cut)
    memo[key] = best_cost
    choice[key] = best_action
    return best_cost


def _reconstruct(
    top: int,
    left: int,
    bottom: int,
    right: int,
    model: RegionCostModel,
    choice: dict,
) -> list[DecomposedRegion]:
    action, cut = choice[(top, left, bottom, right)]
    if action == "empty":
        return []
    if action == "table":
        best = model.best_choice(top, left, bottom, right)
        return [
            DecomposedRegion(
                range=model.original_range(top, left, bottom, right),
                kind=best.kind,
                cost=best.cost,
                filled_cells=best.filled,
            )
        ]
    if action == "horizontal":
        return (
            _reconstruct(top, left, cut, right, model, choice)
            + _reconstruct(cut + 1, left, bottom, right, model, choice)
        )
    return (
        _reconstruct(top, left, bottom, cut, model, choice)
        + _reconstruct(top, cut + 1, bottom, right, model, choice)
    )


def _finalize_rcv(
    total_cost: float, regions: list[DecomposedRegion], costs: CostParameters
) -> tuple[float, list[DecomposedRegion]]:
    """Charge the shared RCV table-instantiation cost once, if any RCV region exists."""
    if any(region.kind is ModelKind.RCV for region in regions) and costs.table_cost:
        total_cost += costs.table_cost
    return total_cost, regions
