"""Decomposition plans: the output of the optimisation algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grid.range import RangeRef
from repro.models.base import ModelKind
from repro.storage.costs import CostParameters


@dataclass(frozen=True, slots=True)
class DecomposedRegion:
    """One planned region: its rectangle, model kind, and cost contribution."""

    range: RangeRef
    kind: ModelKind
    cost: float
    filled_cells: int


@dataclass
class DecompositionResult:
    """The plan produced by a decomposition algorithm."""

    algorithm: str
    regions: list[DecomposedRegion]
    cost: float
    costs: CostParameters
    elapsed_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def table_count(self) -> int:
        """Number of planned tables (RCV regions are later merged into one)."""
        return len(self.regions)

    @property
    def filled_cells(self) -> int:
        """Total filled cells covered by the plan."""
        return sum(region.filled_cells for region in self.regions)

    def regions_by_kind(self) -> dict[ModelKind, int]:
        """Histogram of region kinds."""
        histogram: dict[ModelKind, int] = {}
        for region in self.regions:
            histogram[region.kind] = histogram.get(region.kind, 0) + 1
        return histogram

    def as_plan(self) -> list[tuple[RangeRef, ModelKind]]:
        """The (range, kind) pairs consumed by ``HybridDataModel.from_decomposition``."""
        return [(region.range, region.kind) for region in self.regions]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecompositionResult(algorithm={self.algorithm!r}, tables={self.table_count}, "
            f"cost={self.cost:.1f})"
        )
