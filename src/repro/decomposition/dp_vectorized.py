"""Vectorised recursive-decomposition DP.

The textbook formulation in :mod:`repro.decomposition.recursive_dp` memoises
one sub-rectangle at a time, which is easy to read but slow in pure Python
once the weighted grid grows past a few hundred cells.  This module computes
exactly the same optimum with numpy: rectangles are processed in increasing
(height, width) order, and for every cut position the candidate costs of
*all* rectangles of that shape are evaluated in one array operation.

The result is identical to the recursive engine (the test suite asserts this
on randomised grids); only the constant factor changes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.decomposition.cost import RegionCostModel
from repro.decomposition.result import DecomposedRegion
from repro.models.base import ModelKind

#: Action codes stored per rectangle shape.
_EMPTY, _TABLE, _HCUT, _VCUT = 0, 1, 2, 3


def solve_vectorized(model: RegionCostModel) -> tuple[float, list[DecomposedRegion]]:
    """Optimal recursive decomposition over the whole weighted grid."""
    rows, columns = model.grid.shape
    if rows == 0 or columns == 0:
        return 0.0, []
    costs = model.costs
    kinds = model.kinds
    prefix = model._prefix               # (rows+1, columns+1) filled-cell prefix sums
    row_prefix = model._row_prefix       # original-row prefix sums
    col_prefix = model._col_prefix       # original-column prefix sums

    opt: dict[tuple[int, int], np.ndarray] = {}
    action: dict[tuple[int, int], np.ndarray] = {}
    cut_position: dict[tuple[int, int], np.ndarray] = {}

    for height in range(1, rows + 1):
        original_heights = (row_prefix[height:] - row_prefix[:-height]).astype(np.float64)
        for width in range(1, columns + 1):
            start_rows = rows - height + 1
            start_columns = columns - width + 1
            filled = (
                prefix[height: height + start_rows, width: width + start_columns]
                - prefix[:start_rows, width: width + start_columns]
                - prefix[height: height + start_rows, :start_columns]
                + prefix[:start_rows, :start_columns]
            )
            original_widths = (col_prefix[width:] - col_prefix[:-width]).astype(np.float64)
            region_rows = original_heights[:, None]
            region_columns = original_widths[None, :]

            best = _single_table_costs(
                filled, region_rows, region_columns, costs, kinds, model.max_columns
            )
            act = np.full(best.shape, _TABLE, dtype=np.int8)
            cut = np.full(best.shape, -1, dtype=np.int32)

            for offset in range(1, height):
                top_part = opt[(offset, width)][:start_rows, :start_columns]
                bottom_part = opt[(height - offset, width)][offset: offset + start_rows, :start_columns]
                candidate = top_part + bottom_part
                better = candidate < best
                best = np.where(better, candidate, best)
                act = np.where(better, _HCUT, act)
                cut = np.where(better, offset, cut)

            for offset in range(1, width):
                left_part = opt[(height, offset)][:start_rows, :start_columns]
                right_part = opt[(height, width - offset)][:start_rows, offset: offset + start_columns]
                candidate = left_part + right_part
                better = candidate < best
                best = np.where(better, candidate, best)
                act = np.where(better, _VCUT, act)
                cut = np.where(better, offset, cut)

            empty = filled == 0
            best = np.where(empty, 0.0, best)
            act = np.where(empty, _EMPTY, act)

            opt[(height, width)] = best
            action[(height, width)] = act
            cut_position[(height, width)] = cut

    total = float(opt[(rows, columns)][0, 0])
    regions: list[DecomposedRegion] = []
    _reconstruct(model, action, cut_position, 0, 0, rows, columns, regions)
    return total, regions


def _single_table_costs(
    filled: np.ndarray,
    region_rows: np.ndarray,
    region_columns: np.ndarray,
    costs,
    kinds: Sequence[ModelKind],
    max_columns: int | None,
) -> np.ndarray:
    """Vectorised ``RegionCostModel.best_choice`` cost for one rectangle shape."""
    best = np.full(filled.shape, np.inf)
    if ModelKind.ROM in kinds:
        rom = (
            costs.table_cost
            + costs.cell_cost * region_rows * region_columns
            + costs.column_cost * region_columns
            + costs.row_cost * region_rows
        )
        rom = rom + np.zeros_like(best)
        if max_columns is not None:
            rom = np.where(region_columns + np.zeros_like(best) > max_columns, np.inf, rom)
        best = np.minimum(best, rom)
    if ModelKind.COM in kinds:
        com = (
            costs.table_cost
            + costs.cell_cost * region_rows * region_columns
            + costs.column_cost * region_rows
            + costs.row_cost * region_columns
        )
        com = com + np.zeros_like(best)
        if max_columns is not None:
            com = np.where(region_rows + np.zeros_like(best) > max_columns, np.inf, com)
        best = np.minimum(best, com)
    if ModelKind.RCV in kinds:
        best = np.minimum(best, costs.rcv_tuple_cost * filled)
    return best


def _reconstruct(
    model: RegionCostModel,
    action: dict[tuple[int, int], np.ndarray],
    cut_position: dict[tuple[int, int], np.ndarray],
    top: int,
    left: int,
    height: int,
    width: int,
    out: list[DecomposedRegion],
) -> None:
    act = int(action[(height, width)][top, left])
    if act == _EMPTY:
        return
    if act == _TABLE:
        choice = model.best_choice(top, left, top + height - 1, left + width - 1)
        out.append(
            DecomposedRegion(
                range=model.original_range(top, left, top + height - 1, left + width - 1),
                kind=choice.kind,
                cost=choice.cost,
                filled_cells=choice.filled,
            )
        )
        return
    offset = int(cut_position[(height, width)][top, left])
    if act == _HCUT:
        _reconstruct(model, action, cut_position, top, left, offset, width, out)
        _reconstruct(model, action, cut_position, top + offset, left, height - offset, width, out)
    else:
        _reconstruct(model, action, cut_position, top, left, height, offset, out)
        _reconstruct(model, action, cut_position, top, left + offset, height, width - offset, out)
