"""Greedy and aggressive-greedy decomposition (Section IV-E).

*Greedy* repeatedly splits the current rectangle top-down, at each step
comparing the cost of not splitting against the best horizontal or vertical
cut — with the child costs estimated by ``romCost`` (the locally optimal,
worst-case assumption).  It stops as soon as not splitting is locally best.

*Aggressive greedy* never stops early: it always applies the locally best cut
until rectangles are fully filled (or single weighted cells), then assembles
the best plan while backtracking, reconsidering "store as one table" against
"use the children's plans" at every node.  Both are O(n^2) in the weighted
grid size.
"""

from __future__ import annotations

import time
from typing import Collection, Sequence

from repro.decomposition.cost import DEFAULT_KINDS, RegionCostModel
from repro.decomposition.result import DecomposedRegion, DecompositionResult
from repro.grid.weighted import WeightedGrid
from repro.models.base import ModelKind
from repro.storage.costs import CostParameters


def decompose_greedy(
    coordinates: Collection[tuple[int, int]],
    costs: CostParameters,
    *,
    kinds: Sequence[ModelKind] = DEFAULT_KINDS,
    use_weighted: bool = True,
    max_columns: int | None = None,
) -> DecompositionResult:
    """The greedy heuristic: split only while a split is locally beneficial."""
    return _decompose(
        coordinates,
        costs,
        aggressive=False,
        kinds=kinds,
        use_weighted=use_weighted,
        max_columns=max_columns,
    )


def decompose_aggressive(
    coordinates: Collection[tuple[int, int]],
    costs: CostParameters,
    *,
    kinds: Sequence[ModelKind] = DEFAULT_KINDS,
    use_weighted: bool = True,
    max_columns: int | None = None,
) -> DecompositionResult:
    """The aggressive greedy heuristic: always split, assemble on backtrack."""
    return _decompose(
        coordinates,
        costs,
        aggressive=True,
        kinds=kinds,
        use_weighted=use_weighted,
        max_columns=max_columns,
    )


# ---------------------------------------------------------------------- #
def _decompose(
    coordinates: Collection[tuple[int, int]],
    costs: CostParameters,
    *,
    aggressive: bool,
    kinds: Sequence[ModelKind],
    use_weighted: bool,
    max_columns: int | None,
) -> DecompositionResult:
    started = time.perf_counter()
    algorithm = "aggressive" if aggressive else "greedy"
    coordinates = set(coordinates)
    if not coordinates:
        return DecompositionResult(
            algorithm=algorithm, regions=[], cost=0.0, costs=costs, elapsed_seconds=0.0
        )
    grid = (
        WeightedGrid.from_coordinates(coordinates)
        if use_weighted
        else WeightedGrid.dense_from_coordinates(coordinates)
    )
    rows, columns = grid.shape

    def run(pass_kinds: Sequence[ModelKind]) -> tuple[float, list[DecomposedRegion]]:
        model = RegionCostModel(grid, costs, kinds=pass_kinds, max_columns=max_columns)
        raw_cost, plan = _solve(0, 0, rows - 1, columns - 1, model, aggressive=aggressive)
        if any(region.kind is ModelKind.RCV for region in plan) and costs.table_cost:
            raw_cost += costs.table_cost
        return raw_cost, plan

    # As in the DP, the shared RCV table's fixed cost is charged up-front, so
    # an RCV-using plan is compared against the best RCV-free plan.
    total_cost, regions = run(kinds)
    non_rcv_kinds = tuple(kind for kind in kinds if kind is not ModelKind.RCV)
    if (
        ModelKind.RCV in kinds
        and non_rcv_kinds
        and any(region.kind is ModelKind.RCV for region in regions)
    ):
        alt_cost, alt_regions = run(non_rcv_kinds)
        if alt_cost < total_cost:
            total_cost, regions = alt_cost, alt_regions

    return DecompositionResult(
        algorithm=algorithm,
        regions=regions,
        cost=total_cost,
        costs=costs,
        elapsed_seconds=time.perf_counter() - started,
        metadata={"weighted_shape": (rows, columns)},
    )


def _solve(
    top: int,
    left: int,
    bottom: int,
    right: int,
    model: RegionCostModel,
    *,
    aggressive: bool,
) -> tuple[float, list[DecomposedRegion]]:
    if model.filled(top, left, bottom, right) == 0:
        return 0.0, []

    own_choice = model.best_choice(top, left, bottom, right)
    own_regions = [
        DecomposedRegion(
            range=model.original_range(top, left, bottom, right),
            kind=own_choice.kind,
            cost=own_choice.cost,
            filled_cells=own_choice.filled,
        )
    ]

    # Fully filled or atomic rectangles are never split further.
    rows, columns = model.original_dimensions(top, left, bottom, right)
    if own_choice.filled == rows * columns or (top == bottom and left == right):
        return own_choice.cost, own_regions

    best_cut = _best_local_cut(top, left, bottom, right, model)
    if best_cut is None:
        return own_choice.cost, own_regions
    local_cut_cost, orientation, position = best_cut

    if not aggressive and own_choice.cost <= local_cut_cost:
        # Greedy stops as soon as not splitting is locally cheapest.
        return own_choice.cost, own_regions

    if orientation == "horizontal":
        first = _solve(top, left, position, right, model, aggressive=aggressive)
        second = _solve(position + 1, left, bottom, right, model, aggressive=aggressive)
    else:
        first = _solve(top, left, bottom, position, model, aggressive=aggressive)
        second = _solve(top, position + 1, bottom, right, model, aggressive=aggressive)
    split_cost = first[0] + second[0]
    split_regions = first[1] + second[1]

    # Both variants keep whichever of {not split, recursive split} is cheaper
    # once the children's true costs are known (for greedy this only improves
    # on the local estimate; for aggressive it is the backtracking assembly).
    if split_cost < own_choice.cost:
        return split_cost, split_regions
    return own_choice.cost, own_regions


def _best_local_cut(
    top: int, left: int, bottom: int, right: int, model: RegionCostModel
) -> tuple[float, str, int] | None:
    """The locally best cut, scoring children with the single-table cost.

    Candidate costs for all cut positions are evaluated with the vectorised
    helpers of :class:`RegionCostModel`, keeping the per-rectangle work to a
    couple of numpy operations.
    """
    horizontal = model.horizontal_split_costs(top, left, bottom, right)
    vertical = model.vertical_split_costs(top, left, bottom, right)
    best: tuple[float, str, int] | None = None
    if horizontal.size:
        index = int(horizontal.argmin())
        best = (float(horizontal[index]), "horizontal", top + index)
    if vertical.size:
        index = int(vertical.argmin())
        candidate = (float(vertical[index]), "vertical", left + index)
        if best is None or candidate[0] < best[0]:
            best = candidate
    return best
