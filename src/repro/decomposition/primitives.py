"""Whole-sheet evaluation of the primitive data models (the baselines)."""

from __future__ import annotations

import time
from typing import Collection

from repro.decomposition.cost import primitive_costs
from repro.decomposition.result import DecomposedRegion, DecompositionResult
from repro.grid.bounding import bounding_box
from repro.models.base import ModelKind
from repro.storage.costs import CostParameters


def evaluate_primitive_models(
    coordinates: Collection[tuple[int, int]], costs: CostParameters
) -> dict[str, DecompositionResult]:
    """One single-table plan per primitive model (ROM, COM, RCV).

    These are the baselines the hybrid algorithms are compared against in
    Figures 13, 17 and 25.
    """
    coordinates = set(coordinates)
    started = time.perf_counter()
    box = bounding_box(coordinates)
    results: dict[str, DecompositionResult] = {}
    plain_costs = primitive_costs(coordinates, costs)
    for name, kind in (("rom", ModelKind.ROM), ("com", ModelKind.COM), ("rcv", ModelKind.RCV)):
        if box is None:
            results[name] = DecompositionResult(
                algorithm=name, regions=[], cost=0.0, costs=costs, elapsed_seconds=0.0
            )
            continue
        cost = plain_costs[name]
        region = DecomposedRegion(
            range=box.to_range(), kind=kind, cost=cost, filled_cells=len(coordinates)
        )
        results[name] = DecompositionResult(
            algorithm=name,
            regions=[region],
            cost=cost,
            costs=costs,
            elapsed_seconds=time.perf_counter() - started,
        )
    return results
