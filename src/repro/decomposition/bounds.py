"""Bounds used in the evaluation (Theorems 3 and 4, Figure 13's OPT, Figure 14).

* ``optimal_lower_bound`` — the OPT line of Figure 13: the cost of storing
  only the non-empty cells in a single ROM table, i.e. ignoring the overhead
  of extra tables and of empty cells.
* ``table_count_upper_bound`` — the Theorem-4 bound: for each connected
  component's bounding rectangle, the optimal decomposition uses at most
  ``floor(e * s2 / s1 + 1)`` tables, where ``e`` is the number of empty cells
  in that rectangle.  Summing over components bounds the whole sheet and,
  with Theorem 3, bounds the additive gap of recursive decomposition.
"""

from __future__ import annotations

from typing import Collection

from repro.grid.bounding import bounding_box
from repro.grid.components import connected_components
from repro.storage.costs import CostParameters


def optimal_lower_bound(
    coordinates: Collection[tuple[int, int]], costs: CostParameters
) -> float:
    """Lower bound on the cost of any hybrid data model (the OPT line of Fig. 13).

    The paper's bound is the cost of storing only the non-empty cells in a
    single ROM table (no empty-cell or extra-table overhead).  Because this
    reproduction also allows COM and RCV regions, the bound is the minimum of
    the three analogous ideals: a ROM/COM charged only for distinct rows and
    columns actually used, and an RCV charged one tuple per filled cell.
    """
    coordinates = set(coordinates)
    if not coordinates:
        return 0.0
    distinct_rows = len({row for row, _ in coordinates})
    distinct_columns = len({column for _, column in coordinates})
    base = costs.table_cost + costs.cell_cost * len(coordinates)
    rom_style = base + costs.column_cost * distinct_columns + costs.row_cost * distinct_rows
    com_style = base + costs.column_cost * distinct_rows + costs.row_cost * distinct_columns
    rcv_style = costs.rcv_cost(len(coordinates))
    return min(rom_style, com_style, rcv_style)


def table_count_upper_bound(
    coordinates: Collection[tuple[int, int]], costs: CostParameters
) -> int:
    """Theorem-4 upper bound on the number of tables in the optimal plan."""
    coordinates = set(coordinates)
    if not coordinates:
        return 0
    if costs.table_cost == 0:
        # With no per-table cost the bound degenerates; every cell may get its
        # own table.
        return len(coordinates)
    total = 0
    for component in connected_components(coordinates):
        empty = component.box.area - component.cell_count
        total += int(empty * costs.cell_cost / costs.table_cost + 1)
    return total


def recursive_decomposition_gap(
    coordinates: Collection[tuple[int, int]], costs: CostParameters
) -> float:
    """Theorem-3 additive bound: ``s1 * k(k-1)/2`` with k from Theorem 4."""
    k = table_count_upper_bound(coordinates, costs)
    return costs.table_cost * k * (k - 1) / 2


def bounding_rectangle_area(coordinates: Collection[tuple[int, int]]) -> int:
    """Area of the sheet's minimum bounding rectangle (0 when empty)."""
    box = bounding_box(coordinates)
    return 0 if box is None else box.area
