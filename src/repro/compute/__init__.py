"""Asynchronous compute scheduling: decoupling edits from recompute.

The DataSpread follow-on work on "anti-freeze" formula computation observes
that at database scale a synchronous recompute freezes the client: one edit
upstream of thousands of formulas blocks until the whole dependency subtree
has re-evaluated.  This package provides the alternative: acknowledge the
edit immediately, mark the downstream formulas *stale*, and evaluate them
incrementally — in dependency order, user-visible regions first — while
reads of not-yet-computed cells return their last committed value as a
stale placeholder.

:class:`ComputeScheduler` is the engine-facing entry point; see
:mod:`repro.compute.scheduler` for the queue semantics and
``DataSpread(async_recompute=True)`` for the integration.
"""

from repro.compute.scheduler import CellState, ComputeScheduler, ComputeStats

__all__ = ["CellState", "ComputeScheduler", "ComputeStats"]
