"""The priority-ordered, cancellable compute scheduler.

The scheduler owns the set of *stale* formula cells — cells whose stored
value no longer reflects their precedents — and evaluates them
incrementally, decoupled from the edits that dirtied them:

* **Topological work queue.**  ``mark_dirty(seeds)`` expands the seeds to
  their transitive dependents through the interval-indexed
  :class:`~repro.formula.dependencies.DependencyGraph`
  (``affected_set`` — a BFS slice, never a full-graph sort) and unions them
  into the stale set.  Evaluation order is rebuilt lazily from
  ``slice_edges`` over exactly the stale subset, so a cell always evaluates
  after every stale precedent it reads.
* **Coalescing and cancellation.**  Re-editing a cell whose subtree is
  already queued coalesces (the stale set is a set; ``stats.coalesced``
  counts the hits), and the lazily rebuilt ordering always reflects the
  *latest* graph — a superseding edit replaces the queued work for its
  subtree rather than appending to it.  A queued formula that stops being
  a formula (overwritten by a constant, cleared, or deleted by a
  structural edit) is dropped without evaluation (``stats.cancelled``).
* **Viewport priority.**  A registered region of interest
  (``set_viewport``) promotes the stale cells inside it — and every stale
  cell they transitively read, which must compute first anyway — ahead of
  off-screen work, so the visible part of the sheet converges first.
* **Admission control.**  Optional depth quotas (``max_pending`` global,
  ``max_pending_per_owner`` per session token) bound the queue: ``admit``
  — called before an edit mutates anything — refuses work past a quota
  with :class:`~repro.errors.EngineOverloadedError` carrying a
  ``retry_after_ms`` hint, unless the edit coalesces into already-queued
  cells.  ``stats.shed`` counts refusals, ``stats.high_water`` the
  deepest queue observed.
* **States and stale reads.**  Each cell is ``FRESH``, ``STALE`` or
  ``COMPUTING`` (:meth:`ComputeScheduler.state_of`).  The scheduler never
  touches storage itself; the engine keeps stale cells' last committed
  values readable as placeholders and commits fresh values through the
  ``evaluate`` callback, so reads never block on the queue.

``run`` / ``ensure`` raise
:class:`~repro.errors.CircularDependencyError` when the queued subset
contains a cycle — the stale set is preserved, so editing the cycle away
and draining again recovers, mirroring the synchronous engine's behaviour
at batch exit.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.errors import CircularDependencyError, EngineOverloadedError
from repro.formula.dependencies import DependencyGraph
from repro.formula.rewrite import StructuralEdit
from repro.grid.address import CellAddress
from repro.grid.range import RangeRef


class CellState(Enum):
    """Freshness of one cell with respect to scheduled recomputation."""

    FRESH = "fresh"          # value reflects all precedents
    STALE = "stale"          # queued: reads see the last committed value
    COMPUTING = "computing"  # currently being evaluated


@dataclass
class ComputeStats:
    """Instrumentation counters (exposed for tests and experiments)."""

    scheduled: int = 0             # cells newly enqueued by mark_dirty
    evaluated: int = 0             # cells evaluated and committed
    coalesced: int = 0             # mark_dirty hits on already-queued cells
    cancelled: int = 0             # queued evaluations dropped unevaluated
    priority_evaluations: int = 0  # evaluations served from the viewport queue
    quarantine_retries: int = 0    # evaluation failures retried in-queue
    quarantined: int = 0           # cells quarantined after exhausting retries
    shed: int = 0                  # edits refused by admission control
    high_water: int = 0            # deepest queue depth observed

    def reset(self) -> None:
        self.scheduled = 0
        self.evaluated = 0
        self.coalesced = 0
        self.cancelled = 0
        self.priority_evaluations = 0
        self.quarantine_retries = 0
        self.quarantined = 0
        self.shed = 0
        self.high_water = 0


#: Engine callback evaluating one formula cell and committing its value.
EvaluateCell = Callable[[CellAddress], None]


class ComputeScheduler:
    """Incremental evaluator over the engine's dirty sets.

    The scheduler is deliberately passive: it never evaluates unless asked
    (``run``/``ensure``), so the engine controls when compute happens — on
    explicit ``flush_compute()``, between requests, or in an idle loop.
    """

    #: Evaluation attempts (1 + retries) before a failing cell is quarantined.
    max_evaluate_attempts = 3

    #: ``retry_after_ms`` hint per queued cell: the assumed drain cost of
    #: one queued evaluation, so the hint scales with the backlog.
    retry_cost_ms = 0.05

    def __init__(self, graph: DependencyGraph, evaluate: EvaluateCell) -> None:
        self._graph = graph
        self._evaluate = evaluate
        self._stale: set[CellAddress] = set()
        # Admission control: depth quotas (None = unbounded, the default).
        # ``admit`` refuses work past a quota with EngineOverloadedError;
        # quotas are high-water marks checked *before* an edit mutates
        # anything, so a refusal never loses committed state.
        self.max_pending: int | None = None
        self.max_pending_per_owner: int | None = None
        # Per-owner queue attribution: which owner's edit enqueued each
        # stale cell (first enqueuer wins; reconciled at every rebuild).
        self._owner_of: dict[CellAddress, object] = {}
        self._owner_pending: dict[object, int] = {}
        #: Fault-injection seam: when set, called with the address about to
        #: be evaluated (the latency-chaos harness advances a virtual clock
        #: here; an exception routes through the quarantine machinery).
        self.before_evaluate: Callable[[CellAddress], None] | None = None
        self._computing: CellAddress | None = None
        # Registered regions of interest, keyed by owner token.  ``None``
        # is the legacy single-viewport slot; the service layer registers
        # one viewport per session, drained round-robin for fairness.
        self._viewports: dict[object | None, RangeRef] = {}
        self.stats = ComputeStats()
        # Poisoned-formula containment: per-cell failure counts and the
        # quarantine set (address -> last error text).  A quarantined cell
        # is dropped from the queue with an error value committed through
        # ``on_quarantine`` so the rest of the queue keeps draining.
        self._failures: dict[CellAddress, int] = {}
        self._quarantined: dict[CellAddress, str] = {}
        #: Engine callback committing a quarantined cell as an error value.
        self.on_quarantine: Callable[[CellAddress, BaseException], None] | None = None
        # Ordering structures, rebuilt lazily whenever the stale set, the
        # graph, or the viewport changed since the last rebuild.
        self._order_stale = True
        self._indegree: dict[CellAddress, int] = {}
        self._successors: dict[CellAddress, list[CellAddress]] = {}
        self._predecessors: dict[CellAddress, list[CellAddress]] = {}
        self._priority: set[CellAddress] = set()
        self._priority_by_owner: dict[object | None, set[CellAddress]] = {}
        self._ready_by_owner: dict[object | None, deque[CellAddress]] = {}
        self._rr_order: list[object | None] = []
        self._rr_index = 0
        self._ready: deque[CellAddress] = deque()

    # ------------------------------------------------------------------ #
    # enqueueing
    # ------------------------------------------------------------------ #
    def admit(self, seeds, owner: object | None = None) -> None:
        """Admission control: refuse new async work past the depth quotas.

        Called *before* an edit mutates the engine, so a refusal leaves
        nothing half-applied.  Seeds already queued always pass — their
        work coalesces into the queue rather than deepening it.  Past the
        global (``max_pending``) or per-owner (``max_pending_per_owner``)
        quota, raises :class:`~repro.errors.EngineOverloadedError` with a
        ``retry_after_ms`` hint scaled to the backlog.  The quotas are
        high-water marks on the *seed* check: an admitted edit may still
        fan out past the quota, so the depth overshoot is bounded by one
        edit's affected slice.
        """
        if self.max_pending is None and self.max_pending_per_owner is None:
            return
        if all(seed in self._stale for seed in seeds):
            return  # coalesces into already-queued work
        pending = len(self._stale)
        if self.max_pending is not None and pending >= self.max_pending:
            self.stats.shed += 1
            raise EngineOverloadedError(
                f"compute queue at global depth quota "
                f"({pending} queued >= {self.max_pending}); edit refused",
                retry_after_ms=self.retry_after_hint(pending),
            )
        if self.max_pending_per_owner is not None and owner is not None:
            owned = self._owner_pending.get(owner, 0)
            if owned >= self.max_pending_per_owner:
                self.stats.shed += 1
                raise EngineOverloadedError(
                    f"compute queue at per-session depth quota "
                    f"({owned} queued >= {self.max_pending_per_owner}); "
                    f"edit refused",
                    retry_after_ms=self.retry_after_hint(owned),
                )

    def retry_after_hint(self, backlog: int | None = None) -> float:
        """Suggested client backoff (ms) to let a drain clear the backlog."""
        if backlog is None:
            backlog = len(self._stale)
        return max(1.0, backlog * self.retry_cost_ms)

    def mark_dirty(self, seeds, owner: object | None = None) -> int:
        """Queue the seeds' affected slice; returns newly queued cell count.

        Seeds that are no longer registered formulas cancel their own queued
        evaluation (the edit that produced them overwrote the formula), but
        their dependents still join the queue.  ``owner`` attributes the
        newly queued cells for per-owner admission accounting.
        """
        seeds = list(seeds)
        if not seeds:
            return 0
        for seed in seeds:
            if self._quarantined.pop(seed, None) is not None:
                self._failures.pop(seed, None)
            if seed not in self._graph and seed in self._stale:
                self._stale.discard(seed)
                self._forget_owner(seed)
                self.stats.cancelled += 1
        affected = self._graph.affected_set(seeds)
        for address in affected:
            # A re-edited (or upstream-refreshed) quarantined cell gets a
            # clean slate: it re-enters the queue and re-evaluates.
            if self._quarantined.pop(address, None) is not None:
                self._failures.pop(address, None)
        fresh = affected - self._stale
        new = len(fresh)
        self.stats.scheduled += new
        self.stats.coalesced += len(affected) - new
        self._stale |= affected
        if owner is not None and fresh:
            for address in fresh:
                self._owner_of[address] = owner
            self._owner_pending[owner] = self._owner_pending.get(owner, 0) + new
        if len(self._stale) > self.stats.high_water:
            self.stats.high_water = len(self._stale)
        self._order_stale = True
        return new

    def set_viewport(self, region: RangeRef | None, owner: object | None = None) -> None:
        """Register a region of interest scheduled ahead of other work.

        ``owner`` identifies whose viewport this is (the service layer
        passes a session token); the default ``None`` slot preserves the
        legacy single-viewport API.  ``region=None`` unregisters the
        owner's viewport.  When several owners hold viewports, their ready
        work is drained round-robin so no session's visible region starves
        another's.
        """
        if region is None:
            self._viewports.pop(owner, None)
        else:
            self._viewports[owner] = region
        self._order_stale = True

    @property
    def viewport(self) -> RangeRef | None:
        """The legacy (ownerless) region of interest."""
        return self._viewports.get(None)

    def viewports(self) -> dict[object | None, RangeRef]:
        """Every registered viewport, keyed by owner token (a copy)."""
        return dict(self._viewports)

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def state_of(self, address: CellAddress) -> CellState:
        """The freshness of one cell."""
        if address == self._computing:
            return CellState.COMPUTING
        if address in self._stale and address in self._graph:
            return CellState.STALE
        return CellState.FRESH

    def is_fresh(self, address: CellAddress) -> bool:
        """Whether the cell's stored value reflects all its precedents."""
        return self.state_of(address) is CellState.FRESH

    @property
    def pending_count(self) -> int:
        """Number of cells queued for evaluation."""
        return len(self._stale)

    def pending(self) -> set[CellAddress]:
        """A snapshot of the queued (stale) cells."""
        return set(self._stale)

    def pending_by_owner(self) -> dict[object, int]:
        """Queued-cell counts per attributing owner token (a copy)."""
        return dict(self._owner_pending)

    @property
    def quarantined(self) -> dict[CellAddress, str]:
        """Quarantined poisoned cells and their last error text (a copy)."""
        return dict(self._quarantined)

    def requeue_quarantined(self, addresses=None) -> int:
        """Give quarantined cells a fresh shot at evaluation.

        Clears the quarantine record (and failure count) of every listed
        address — all of them when ``addresses`` is ``None`` — and queues
        them stale again, so a formula that failed on a *transient* fault
        (a flaky data source, an injected latency spike) recomputes once
        the fault clears instead of serving ``#ERROR!`` forever.  Returns
        the number of cells requeued.
        """
        if addresses is None:
            targets = list(self._quarantined)
        else:
            targets = [a for a in addresses if a in self._quarantined]
        for address in targets:
            self._quarantined.pop(address, None)
            self._failures.pop(address, None)
        if targets:
            self.mark_dirty(targets)
        return len(targets)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def run(self, limit: int | None = None, *,
            deadline: float | None = None,
            clock: Callable[[], float] = time.monotonic) -> int:
        """Evaluate up to ``limit`` queued cells (all of them when ``None``).

        Cells are popped in topological order, viewport-priority first.
        Returns the number of cells evaluated.  Raises
        :class:`CircularDependencyError` when only cyclic work remains; the
        queue is kept so a later edit can break the cycle.  ``deadline``
        (a ``clock()`` timestamp) stops the drain cooperatively between
        evaluations; remaining work stays queued.
        """
        return self._drain(limit, None, deadline=deadline, clock=clock)

    def drain(self, budget_n: int) -> int:
        """Deprecated count-budgeted drain; use :meth:`drain_for`.

        A cell-count budget bounds *work items*, not *time*: one expensive
        formula blows the read-latency envelope the idle drain exists to
        protect.  Kept as a shim for callers still tuned in cell counts.
        """
        warnings.warn(
            "ComputeScheduler.drain(budget_n) is deprecated; use "
            "drain_for(budget_ms) — a count budget does not bound latency",
            DeprecationWarning, stacklevel=2,
        )
        if budget_n <= 0:
            return 0
        return self._drain(budget_n, None, best_effort=True)

    def drain_for(self, budget_ms: float, *,
                  clock: Callable[[], float] = time.monotonic) -> int:
        """Time-budgeted best-effort drain: the idle-drain primitive.

        Evaluates queued cells in the same topological, viewport-first
        order as :meth:`run` until the queue empties or ``budget_ms``
        milliseconds elapse.  At least one queued cell is retired when any
        are ready (progress is guaranteed even under a tiny budget); the
        deadline is checked between evaluations, so the overshoot is
        bounded by one formula's cost — the inherent limit of cooperative
        scheduling.  Never raises on cyclic work: the cycle stays queued
        (still surfaced by an explicit ``run``) and the drain simply
        stops, because an opportunistic drain piggybacking on a read must
        not fail the read.  Returns the number of cells evaluated.
        """
        if budget_ms <= 0:
            return 0
        return self._drain(
            None, None, best_effort=True,
            deadline=clock() + budget_ms / 1000.0, clock=clock,
        )

    def ensure(self, address: CellAddress, *,
               deadline: float | None = None,
               clock: Callable[[], float] = time.monotonic) -> int:
        """Make one cell fresh, evaluating only the subtree it needs.

        Evaluates the stale cells the target transitively reads (its
        ancestor slice within the queue) plus the target itself, and nothing
        else.  Returns the number of cells evaluated.  ``deadline`` (a
        ``clock()`` timestamp) bounds the drain cooperatively: past it the
        remaining subtree stays queued and the caller decides whether to
        serve the stale value (``state_of`` still reports STALE).
        """
        if self._order_stale:
            self._rebuild()
        if address not in self._stale:
            return 0
        # The predecessor map is only rebuilt lazily, so it may still list
        # ancestors that were evaluated since the last rebuild — restrict
        # the slice to cells that are actually still stale, or the drain
        # would wait forever on work that is already done.
        needed = {address}
        frontier = [address]
        while frontier:
            current = frontier.pop()
            for predecessor in self._predecessors.get(current, ()):
                if predecessor in self._stale and predecessor not in needed:
                    needed.add(predecessor)
                    frontier.append(predecessor)
        return self._drain(None, needed, deadline=deadline, clock=clock)

    def apply_structural_edit(self, edit: StructuralEdit) -> None:
        """Rewrite queued work across a row/column insert or delete.

        Queued addresses are remapped through the same coordinate arithmetic
        the graph re-keying uses; queued cells whose line was deleted are
        cancelled.  The dependency edges are rediscovered from the re-keyed
        graph at the next rebuild, so ordering stays consistent with the
        rewritten formulas.
        """
        self._quarantined = {
            moved: message
            for address, message in self._quarantined.items()
            if (moved := edit.map_address(address)) is not None
        }
        self._failures = {
            moved: count
            for address, count in self._failures.items()
            if (moved := edit.map_address(address)) is not None
        }
        self._owner_of = {
            moved: owner
            for address, owner in self._owner_of.items()
            if (moved := edit.map_address(address)) is not None
        }
        if not self._stale:
            return
        remapped: set[CellAddress] = set()
        for address in self._stale:
            moved = edit.map_address(address)
            if moved is None:
                self.stats.cancelled += 1
            else:
                remapped.add(moved)
        self._stale = remapped
        self._order_stale = True

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _drain(self, limit: int | None, only: set[CellAddress] | None,
               *, best_effort: bool = False,
               deadline: float | None = None,
               clock: Callable[[], float] | None = None) -> int:
        evaluated = 0
        while self._stale and (limit is None or evaluated < limit):
            if deadline is not None and evaluated and clock() >= deadline:
                break
            if self._order_stale:
                self._rebuild()
                if only is not None:
                    only &= self._stale
            if only is not None and not only:
                break
            if not self._stale:
                break
            address = self._pop_ready(only)
            if address is None:
                if only is not None and not (only & self._stale):
                    break  # everything the slice needed is already fresh
                if best_effort:
                    break  # only cyclic work remains; leave it queued
                raise CircularDependencyError(
                    f"circular dependency among {len(self._stale)} queued formula cell(s)"
                )
            self._computing = address
            quarantined_now = False
            try:
                if self.before_evaluate is not None:
                    self.before_evaluate(address)
                self._evaluate(address)
            except Exception as error:
                # A poisoned formula must not wedge the queue.  Retry it a
                # bounded number of times (at the back of its queue, so the
                # rest of the ready set keeps draining), then quarantine it:
                # commit an error value via ``on_quarantine`` and release
                # its dependents as if it had evaluated.
                self._computing = None
                failures = self._failures.get(address, 0) + 1
                if failures < self.max_evaluate_attempts:
                    self._failures[address] = failures
                    self.stats.quarantine_retries += 1
                    self._requeue(address)
                    continue
                self._failures.pop(address, None)
                self._quarantined[address] = f"{type(error).__name__}: {error}"
                self.stats.quarantined += 1
                quarantined_now = True
                if self.on_quarantine is not None:
                    self.on_quarantine(address, error)
            except BaseException:
                # Leave the cell queued and re-runnable: it was popped but
                # not evaluated, so put it back at the front of its queue.
                self._requeue(address, front=True)
                self._computing = None
                raise
            else:
                self._computing = None
                self._failures.pop(address, None)
            self._stale.discard(address)
            self._forget_owner(address)
            if only is not None:
                only.discard(address)
            if not quarantined_now:
                self.stats.evaluated += 1
            evaluated += 1
            for successor in self._successors.get(address, ()):
                self._indegree[successor] -= 1
                if self._indegree[successor] == 0:
                    self._requeue(successor)
        return evaluated

    def _forget_owner(self, address: CellAddress) -> None:
        """Drop one cell's owner attribution (it left the queue)."""
        owner = self._owner_of.pop(address, None)
        if owner is None:
            return
        count = self._owner_pending.get(owner, 0) - 1
        if count > 0:
            self._owner_pending[owner] = count
        else:
            self._owner_pending.pop(owner, None)

    def _requeue(self, address: CellAddress, *, front: bool = False) -> None:
        """Enqueue a ready cell on every queue it belongs to.

        A cell in several owners' priority closures enters each owner's
        queue; the duplicate pops are skipped via the stale-set check in
        :meth:`_pop_ready`.
        """
        if address in self._priority:
            for owner, members in self._priority_by_owner.items():
                if address in members:
                    queue = self._ready_by_owner[owner]
                    if front:
                        queue.appendleft(address)
                    else:
                        queue.append(address)
        elif front:
            self._ready.appendleft(address)
        else:
            self._ready.append(address)

    def _pop_priority_ready(self, only: set[CellAddress] | None) -> CellAddress | None:
        owners = self._rr_order
        count = len(owners)
        for offset in range(count):
            position = (self._rr_index + offset) % count
            queue = self._ready_by_owner[owners[position]]
            if only is None:
                while queue:
                    address = queue.popleft()
                    if address not in self._stale:
                        continue  # already evaluated via another owner's queue
                    self._rr_index = (position + 1) % count
                    self.stats.priority_evaluations += 1
                    return address
            else:
                for index, address in enumerate(queue):
                    if address in only and address in self._stale:
                        del queue[index]
                        self._rr_index = (position + 1) % count
                        self.stats.priority_evaluations += 1
                        return address
        return None

    def _pop_ready(self, only: set[CellAddress] | None) -> CellAddress | None:
        address = self._pop_priority_ready(only)
        if address is not None:
            return address
        queue = self._ready
        if only is None:
            while queue:
                address = queue.popleft()
                if address in self._stale:
                    return address
            return None
        for index, address in enumerate(queue):
            if address in only:
                del queue[index]
                return address
        return None

    def _rebuild(self) -> None:
        """Rebuild ordering structures from the current stale set and graph."""
        dead = [address for address in self._stale if address not in self._graph]
        for address in dead:
            self._stale.discard(address)
            self.stats.cancelled += 1
        # Reconcile owner attribution with the surviving stale set: any
        # decrement a cancellation path missed self-heals here, so the
        # per-owner counts admission control reads never drift for long.
        if self._owner_of:
            self._owner_of = {
                address: owner
                for address, owner in self._owner_of.items()
                if address in self._stale
            }
            counts: dict[object, int] = {}
            for owner in self._owner_of.values():
                counts[owner] = counts.get(owner, 0) + 1
            self._owner_pending = counts

        pairs = self._graph.slice_edges(self._stale)
        indegree = {address: 0 for address in self._stale}
        successors: dict[CellAddress, list[CellAddress]] = {
            address: [] for address in self._stale
        }
        predecessors: dict[CellAddress, list[CellAddress]] = {
            address: [] for address in self._stale
        }
        seen: set[tuple[CellAddress, CellAddress]] = set()
        for precedent, dependent in pairs:
            if (precedent, dependent) in seen:
                continue
            seen.add((precedent, dependent))
            successors[precedent].append(dependent)
            predecessors[dependent].append(precedent)
            indegree[dependent] += 1

        # Each owner's priority closure: its region of interest plus every
        # stale cell that region transitively reads — those precedents must
        # evaluate first regardless, so promoting them is what actually
        # makes the viewport fresh early.
        priority: set[CellAddress] = set()
        priority_by_owner: dict[object | None, set[CellAddress]] = {}
        for owner, viewport in self._viewports.items():
            frontier = [
                address for address in self._stale
                if viewport.contains_coordinates(address.row, address.column)
            ]
            members = set(frontier)
            while frontier:
                current = frontier.pop()
                for predecessor in predecessors.get(current, ()):
                    if predecessor not in members:
                        members.add(predecessor)
                        frontier.append(predecessor)
            if members:
                priority_by_owner[owner] = members
                priority |= members

        ready = sorted(
            (address for address in self._stale if indegree[address] == 0),
            key=lambda address: (address.row, address.column),
        )
        self._indegree = indegree
        self._successors = successors
        self._predecessors = predecessors
        self._priority = priority
        self._priority_by_owner = priority_by_owner
        self._ready_by_owner = {
            owner: deque(a for a in ready if a in members)
            for owner, members in priority_by_owner.items()
        }
        self._rr_order = list(priority_by_owner)
        self._rr_index = self._rr_index % len(self._rr_order) if self._rr_order else 0
        self._ready = deque(a for a in ready if a not in priority)
        self._order_stale = False
