"""Column-Oriented Model (COM): one database tuple per spreadsheet column."""

from __future__ import annotations

from repro.grid.address import CellAddress
from repro.grid.cell import Cell, CellValue
from repro.grid.range import RangeRef
from repro.grid.sheet import Sheet
from repro.grid.structural import (
    check_delete_line,
    check_insert_line,
    clip_delete_to_anchor,
)
from repro.models.base import DataModel, ModelKind
from repro.models.gridstore import LineGridStore
from repro.storage.costs import CostParameters


class ColumnOrientedModel(DataModel):
    """COM(ColID, Row1, ..., Rowrmax): the transpose of ROM.

    Shines for sheets with many columns and few rows, and for column-oriented
    operations; column insert/delete is O(log N) via the positional mapping,
    row insert/delete uses slot indirection.
    """

    kind = ModelKind.COM

    def __init__(
        self,
        top: int = 1,
        left: int = 1,
        *,
        rows: int = 0,
        columns: int = 0,
        mapping_scheme: str = "hierarchical",
    ) -> None:
        self._top = top
        self._left = left
        self._store = LineGridStore(mapping_scheme=mapping_scheme)
        if columns:
            self._store.ensure_major(columns)
        if rows:
            self._store.ensure_minor(rows)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_sheet(
        cls,
        sheet: Sheet,
        region: RangeRef | None = None,
        *,
        mapping_scheme: str = "hierarchical",
    ) -> "ColumnOrientedModel":
        """Load the cells of ``sheet`` (optionally restricted to ``region``)."""
        if region is None:
            box = sheet.bounding_box()
            region = box.to_range() if box is not None else RangeRef(1, 1, 1, 1)
        model = cls(
            top=region.top,
            left=region.left,
            rows=region.rows,
            columns=region.columns,
            mapping_scheme=mapping_scheme,
        )
        # Group by column so each stored tuple is written exactly once —
        # per-cell updates rewrite a long column's record per cell.
        lines: dict[int, dict[int, Cell]] = {}
        for address, cell in sheet.get_cells(region).items():
            lines.setdefault(address.column - region.left + 1, {})[
                address.row - region.top + 1] = cell
        for major in sorted(lines):
            model._store.set_major_line(major, lines[major])
        return model

    # ------------------------------------------------------------------ #
    def region(self) -> RangeRef:
        columns = max(self._store.major_count, 1)
        rows = max(self._store.minor_count, 1)
        return RangeRef(self._top, self._left, self._top + rows - 1, self._left + columns - 1)

    def cell_count(self) -> int:
        return self._store.filled_cells

    def get_cells(self, region: RangeRef) -> dict[CellAddress, Cell]:
        own = self.region()
        overlap = own.intersection(region)
        if overlap is None:
            return {}
        result: dict[CellAddress, Cell] = {}
        minor_start = overlap.top - self._top + 1
        minor_end = overlap.bottom - self._top + 1
        for column in range(overlap.left, overlap.right + 1):
            cells = self._store.get_major_slice(column - self._left + 1, minor_start, minor_end)
            for offset, cell in enumerate(cells):
                if not cell.is_empty:
                    result[CellAddress(overlap.top + offset, column)] = cell
        return result

    def get_values(self, region: RangeRef) -> dict[tuple[int, int], CellValue]:
        own = self.region()
        overlap = own.intersection(region)
        if overlap is None:
            return {}
        result: dict[tuple[int, int], CellValue] = {}
        minor_start = overlap.top - self._top + 1
        minor_end = overlap.bottom - self._top + 1
        for column in range(overlap.left, overlap.right + 1):
            cells = self._store.get_major_slice(column - self._left + 1, minor_start, minor_end)
            for offset, cell in enumerate(cells):
                if not cell.is_empty:
                    result[(overlap.top + offset, column)] = cell.value
        return result

    def get_cell(self, row: int, column: int) -> Cell:
        return self._store.get(column - self._left + 1, row - self._top + 1)

    # ------------------------------------------------------------------ #
    def update_cell(self, row: int, column: int, cell: Cell) -> None:
        self._store.set(column - self._left + 1, row - self._top + 1, cell)

    def insert_row_after(self, row: int, count: int = 1) -> None:
        check_insert_line(row, count, axis="row")
        relative = row - self._top + 1
        if relative < 0:
            self._top += count
            return
        self._store.insert_minor_after(relative, count)

    def delete_row(self, row: int, count: int = 1) -> None:
        check_delete_line(row, count, axis="row")
        self._top, start, remaining = clip_delete_to_anchor(row, count, self._top)
        if remaining:
            self._store.delete_minor(start, remaining)

    def insert_column_after(self, column: int, count: int = 1) -> None:
        check_insert_line(column, count, axis="column")
        relative = column - self._left + 1
        if relative < 0:
            self._left += count
            return
        self._store.insert_major_after(relative, count)

    def delete_column(self, column: int, count: int = 1) -> None:
        check_delete_line(column, count, axis="column")
        self._left, start, remaining = clip_delete_to_anchor(column, count, self._left)
        if remaining:
            self._store.delete_major(start, remaining)

    def shift(self, rows: int = 0, columns: int = 0) -> None:
        """Translate the whole region (used by the hybrid model)."""
        self._top += rows
        self._left += columns

    # ------------------------------------------------------------------ #
    def storage_cost(self, costs: CostParameters) -> float:
        return costs.com_cost(self._store.minor_count, self._store.major_count)

    @property
    def positional_mapping(self):
        """The column positional mapping (exposed for experiments)."""
        return self._store.mapping
