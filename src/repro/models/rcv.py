"""Row-Column-Value Model (RCV): one tuple per filled cell.

The key-value representation: RCV(RowID, ColID, Value).  Efficient for sparse
sheets and single-cell access, but pays a per-cell tuple overhead that makes
it expensive for dense data (Section IV-B).

Row and column numbers are not stored directly — each filled cell references
a stable *row identifier* and *column identifier*, and two positional
mappings translate presentational positions to identifiers.  Row/column
insert and delete therefore touch only the positional mappings, never the
stored cells (no cascading updates).
"""

from __future__ import annotations

from repro.grid.address import CellAddress
from repro.grid.cell import Cell, CellValue
from repro.grid.range import RangeRef
from repro.grid.sheet import Sheet
from repro.grid.structural import (
    check_delete_line,
    check_insert_line,
    clip_delete_to_anchor,
)
from repro.models.base import DataModel, ModelKind
from repro.positional import PositionalMapping, create_mapping
from repro.storage.costs import CostParameters


class RowColumnValueModel(DataModel):
    """RCV(RowID, ColID, Value) with positional row/column identifier mappings."""

    kind = ModelKind.RCV

    def __init__(
        self,
        top: int = 1,
        left: int = 1,
        *,
        rows: int = 0,
        columns: int = 0,
        mapping_scheme: str = "hierarchical",
    ) -> None:
        self._top = top
        self._left = left
        self._cells: dict[tuple[int, int], Cell] = {}
        self._row_ids: PositionalMapping = create_mapping(mapping_scheme)
        self._column_ids: PositionalMapping = create_mapping(mapping_scheme)
        self._next_row_id = 0
        self._next_column_id = 0
        self._ensure_rows(rows)
        self._ensure_columns(columns)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_sheet(
        cls,
        sheet: Sheet,
        region: RangeRef | None = None,
        *,
        mapping_scheme: str = "hierarchical",
    ) -> "RowColumnValueModel":
        """Load the cells of ``sheet`` (optionally restricted to ``region``)."""
        if region is None:
            box = sheet.bounding_box()
            region = box.to_range() if box is not None else RangeRef(1, 1, 1, 1)
        model = cls(
            top=region.top,
            left=region.left,
            rows=region.rows,
            columns=region.columns,
            mapping_scheme=mapping_scheme,
        )
        for address, cell in sheet.get_cells(region).items():
            model.update_cell(address.row, address.column, cell)
        return model

    # ------------------------------------------------------------------ #
    # identifier management
    # ------------------------------------------------------------------ #
    def _next_row_identifier(self) -> int:
        row_id = self._next_row_id
        self._next_row_id += 1
        return row_id

    def _next_column_identifier(self) -> int:
        column_id = self._next_column_id
        self._next_column_id += 1
        return column_id

    def _ensure_rows(self, count: int) -> None:
        self._row_ids.extend_to(count, self._next_row_identifier)

    def _ensure_columns(self, count: int) -> None:
        self._column_ids.extend_to(count, self._next_column_identifier)

    def _row_id(self, row: int) -> int:
        if row < self._top:
            # Grow upward: prepend identifiers so the anchor moves to ``row``
            # (writes are not restricted to land below the first-seen cell).
            for _ in range(self._top - row):
                self._row_ids.insert_at(1, self._next_row_identifier())
            self._top = row
        relative = row - self._top + 1
        self._ensure_rows(relative)
        return self._row_ids.fetch(relative)

    def _column_id(self, column: int) -> int:
        if column < self._left:
            for _ in range(self._left - column):
                self._column_ids.insert_at(1, self._next_column_identifier())
            self._left = column
        relative = column - self._left + 1
        self._ensure_columns(relative)
        return self._column_ids.fetch(relative)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def region(self) -> RangeRef:
        rows = max(len(self._row_ids), 1)
        columns = max(len(self._column_ids), 1)
        return RangeRef(self._top, self._left, self._top + rows - 1, self._left + columns - 1)

    def cell_count(self) -> int:
        return len(self._cells)

    def get_cells(self, region: RangeRef) -> dict[CellAddress, Cell]:
        if not self._row_ids or not self._column_ids:
            return {}  # no mapped positions: nothing stored is visible
        own = self.region()
        overlap = own.intersection(region)
        if overlap is None:
            return {}
        result: dict[CellAddress, Cell] = {}
        if overlap.area <= len(self._cells):
            # Probe each position of the requested rectangle.
            for row in range(overlap.top, overlap.bottom + 1):
                row_id = self._row_ids.fetch(row - self._top + 1)
                for column in range(overlap.left, overlap.right + 1):
                    column_id = self._column_ids.fetch(column - self._left + 1)
                    cell = self._cells.get((row_id, column_id))
                    if cell is not None:
                        result[CellAddress(row, column)] = cell
        else:
            # Fewer stored cells than probe positions: invert the mapping once.
            row_positions = {self._row_ids.fetch(p): p for p in
                             range(overlap.top - self._top + 1, overlap.bottom - self._top + 2)}
            column_positions = {self._column_ids.fetch(p): p for p in
                                range(overlap.left - self._left + 1, overlap.right - self._left + 2)}
            for (row_id, column_id), cell in self._cells.items():
                row_position = row_positions.get(row_id)
                column_position = column_positions.get(column_id)
                if row_position is not None and column_position is not None:
                    result[CellAddress(self._top + row_position - 1,
                                       self._left + column_position - 1)] = cell
        return result

    def get_values(self, region: RangeRef) -> dict[tuple[int, int], CellValue]:
        if not self._row_ids or not self._column_ids:
            return {}
        own = self.region()
        overlap = own.intersection(region)
        if overlap is None:
            return {}
        result: dict[tuple[int, int], CellValue] = {}
        if overlap.area <= len(self._cells):
            column_ids = [
                (column, self._column_ids.fetch(column - self._left + 1))
                for column in range(overlap.left, overlap.right + 1)
            ]
            for row in range(overlap.top, overlap.bottom + 1):
                row_id = self._row_ids.fetch(row - self._top + 1)
                for column, column_id in column_ids:
                    cell = self._cells.get((row_id, column_id))
                    if cell is not None:
                        result[(row, column)] = cell.value
        else:
            row_positions = {self._row_ids.fetch(p): p for p in
                             range(overlap.top - self._top + 1, overlap.bottom - self._top + 2)}
            column_positions = {self._column_ids.fetch(p): p for p in
                                range(overlap.left - self._left + 1, overlap.right - self._left + 2)}
            for (row_id, column_id), cell in self._cells.items():
                row_position = row_positions.get(row_id)
                column_position = column_positions.get(column_id)
                if row_position is not None and column_position is not None:
                    result[(self._top + row_position - 1,
                            self._left + column_position - 1)] = cell.value
        return result

    def get_values_dense(self, region: RangeRef) -> list[CellValue]:
        """Dense row-major slab via one ordered walk per positional mapping.

        ``fetch_range`` resolves all spanned row/column identifiers in one
        traversal of each mapping, so the slab costs O(identifiers + area)
        dictionary probes instead of an O(log n) positional fetch per row —
        the read path the columnar aggregate build reduces over.
        """
        width = region.right - region.left + 1
        dense: list[CellValue] = [None] * region.area
        if not self._row_ids or not self._column_ids:
            return dense
        overlap = self.region().intersection(region)
        if overlap is None:
            return dense
        row_ids = self._row_ids.fetch_range(
            overlap.top - self._top + 1, overlap.bottom - self._top + 1)
        column_ids = self._column_ids.fetch_range(
            overlap.left - self._left + 1, overlap.right - self._left + 1)
        cells = self._cells
        base = (overlap.top - region.top) * width + (overlap.left - region.left)
        if len(column_ids) == 1:
            # The hot shape (a whole-column aggregate): lift the inner loop.
            column_id = column_ids[0]
            index = base
            for row_id in row_ids:
                cell = cells.get((row_id, column_id))
                if cell is not None:
                    dense[index] = cell.value
                index += width
        else:
            for offset, row_id in enumerate(row_ids):
                index = base + offset * width
                for column_id in column_ids:
                    cell = cells.get((row_id, column_id))
                    if cell is not None:
                        dense[index] = cell.value
                    index += 1
        return dense

    def get_cell(self, row: int, column: int) -> Cell:
        relative_row = row - self._top + 1
        relative_column = column - self._left + 1
        if (relative_row < 1 or relative_row > len(self._row_ids)
                or relative_column < 1 or relative_column > len(self._column_ids)):
            return Cell()
        key = (self._row_ids.fetch(relative_row), self._column_ids.fetch(relative_column))
        return self._cells.get(key, Cell())

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def update_cell(self, row: int, column: int, cell: Cell) -> None:
        key = (self._row_id(row), self._column_id(column))
        if cell.is_empty:
            self._cells.pop(key, None)
        else:
            self._cells[key] = cell

    def update_cells(self, items) -> None:
        """Bulk write with batched positional lookups.

        A dense bulk write revisits the same rows and columns over and over;
        resolving each distinct row/column identifier once per call turns
        2·n positional-mapping fetches into (distinct rows + distinct
        columns).  Identifiers are stable, so memoising them within one call
        is safe even though ``_row_id``/``_column_id`` may grow the extent.
        """
        row_ids: dict[int, int] = {}
        column_ids: dict[int, int] = {}
        cells = self._cells
        for row, column, cell in items:
            row_id = row_ids.get(row)
            if row_id is None:
                row_id = row_ids[row] = self._row_id(row)
            column_id = column_ids.get(column)
            if column_id is None:
                column_id = column_ids[column] = self._column_id(column)
            key = (row_id, column_id)
            if cell.is_empty:
                cells.pop(key, None)
            else:
                cells[key] = cell

    def insert_row_after(self, row: int, count: int = 1) -> None:
        check_insert_line(row, count, axis="row")
        relative = row - self._top + 1
        if relative < 0:
            # Strictly above the anchor: the whole region shifts down.
            self._top += count
            return
        if relative >= len(self._row_ids):
            # At or beyond the last stored row: nothing stored shifts, the
            # mapping extends lazily when a cell is actually written there.
            return
        for offset in range(count):
            self._row_ids.insert_at(relative + 1 + offset, self._next_row_identifier())

    def delete_row(self, row: int, count: int = 1) -> None:
        check_delete_line(row, count, axis="row")
        self._top, start, remaining = clip_delete_to_anchor(row, count, self._top)
        if not remaining:
            return
        removed_ids = set(self._row_ids.delete_span(start, remaining))
        if removed_ids:
            self._cells = {
                key: cell for key, cell in self._cells.items() if key[0] not in removed_ids
            }

    def insert_column_after(self, column: int, count: int = 1) -> None:
        check_insert_line(column, count, axis="column")
        relative = column - self._left + 1
        if relative < 0:
            self._left += count
            return
        if relative >= len(self._column_ids):
            return
        for offset in range(count):
            self._column_ids.insert_at(relative + 1 + offset, self._next_column_identifier())

    def delete_column(self, column: int, count: int = 1) -> None:
        check_delete_line(column, count, axis="column")
        self._left, start, remaining = clip_delete_to_anchor(column, count, self._left)
        if not remaining:
            return
        removed_ids = set(self._column_ids.delete_span(start, remaining))
        if removed_ids:
            self._cells = {
                key: cell for key, cell in self._cells.items() if key[1] not in removed_ids
            }

    def shift(self, rows: int = 0, columns: int = 0) -> None:
        """Translate the whole region (used by the hybrid model)."""
        self._top += rows
        self._left += columns

    # ------------------------------------------------------------------ #
    def storage_cost(self, costs: CostParameters) -> float:
        return costs.rcv_cost(len(self._cells))
