"""Orientation-agnostic tuple-per-line store shared by ROM and COM.

ROM stores one database tuple per sheet *row*; COM stores one tuple per sheet
*column*.  Both need the same machinery: a positional mapping from the
presentational position of the major axis (row for ROM, column for COM) to a
stable tuple pointer, and a slot-indirection list on the minor axis so that
inserting or deleting a minor line does not rewrite every stored tuple.

:class:`LineGridStore` implements that machinery once, in terms of "major"
and "minor" axes; ROM and COM wrap it with the appropriate orientation.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import DataModelError
from repro.grid.cell import Cell
from repro.positional import PositionalMapping, create_mapping
from repro.storage.heap import HeapFile
from repro.storage.tuples import TuplePointer

#: Stored cell payload: ``None`` for an empty slot, else ``(value, formula)``.
StoredCell = tuple


class LineGridStore:
    """Stores a rectangular region one tuple per *major* line.

    Major positions are managed by a positional mapping (so major-line
    insert/delete is O(log N) with the hierarchical scheme); minor positions
    are managed by an append-only slot table (so minor-line insert/delete is
    O(1) and never rewrites stored tuples).
    """

    def __init__(self, *, mapping_scheme: str = "hierarchical") -> None:
        self._heap = HeapFile()
        self._mapping: PositionalMapping = create_mapping(mapping_scheme)
        #: minor display position (0-based) -> physical slot index in records
        self._minor_slots: list[int] = []
        self._next_slot = 0
        self._filled = 0

    # ------------------------------------------------------------------ #
    @property
    def major_count(self) -> int:
        """Number of major lines currently stored."""
        return len(self._mapping)

    @property
    def minor_count(self) -> int:
        """Number of minor lines currently visible."""
        return len(self._minor_slots)

    @property
    def filled_cells(self) -> int:
        """Number of non-empty stored cells."""
        return self._filled

    @property
    def mapping(self) -> PositionalMapping:
        """The positional mapping over major lines (exposed for benchmarks)."""
        return self._mapping

    # ------------------------------------------------------------------ #
    # sizing
    # ------------------------------------------------------------------ #
    def ensure_major(self, count: int) -> None:
        """Grow the major axis to at least ``count`` lines (appending empties)."""
        self._mapping.extend_to(count, lambda: self._heap.insert(()))

    def ensure_minor(self, count: int) -> None:
        """Grow the minor axis to at least ``count`` lines."""
        while self.minor_count < count:
            self._minor_slots.append(self._next_slot)
            self._next_slot += 1

    # ------------------------------------------------------------------ #
    # cell access (1-based major/minor positions)
    # ------------------------------------------------------------------ #
    def get(self, major: int, minor: int) -> Cell:
        """The cell at (major, minor), or an empty cell."""
        if major < 1 or major > self.major_count or minor < 1 or minor > self.minor_count:
            return Cell()
        record = self._read_record(major)
        slot = self._minor_slots[minor - 1]
        stored = record[slot] if slot < len(record) else None
        return _to_cell(stored)

    def get_major_slice(self, major: int, minor_start: int, minor_end: int) -> list[Cell]:
        """Cells of one major line restricted to minor positions [start..end].

        Reads the stored tuple once and materialises only the requested
        slots — the bulk access path used by ``getCells`` so that wide rows
        are not fully decoded when a formula touches a narrow range.
        """
        if major < 1 or major > self.major_count:
            return [Cell() for _ in range(minor_end - minor_start + 1)]
        record = self._read_record(major)
        cells = []
        for minor in range(minor_start, minor_end + 1):
            if minor < 1 or minor > self.minor_count:
                cells.append(Cell())
                continue
            slot = self._minor_slots[minor - 1]
            stored = record[slot] if slot < len(record) else None
            cells.append(_to_cell(stored))
        return cells

    def get_major_line(self, major: int) -> list[Cell]:
        """All visible cells of one major line, in minor order."""
        if major < 1 or major > self.major_count:
            return [Cell() for _ in range(self.minor_count)]
        record = self._read_record(major)
        cells = []
        for slot in self._minor_slots:
            stored = record[slot] if slot < len(record) else None
            cells.append(_to_cell(stored))
        return cells

    def set(self, major: int, minor: int, cell: Cell) -> None:
        """Store ``cell`` at (major, minor), growing the region as needed."""
        if major < 1 or minor < 1:
            raise DataModelError(f"positions must be >= 1, got ({major}, {minor})")
        self.ensure_major(major)
        self.ensure_minor(minor)
        pointer = self._mapping.fetch(major)
        record = list(self._heap.read(pointer))
        slot = self._minor_slots[minor - 1]
        if slot >= len(record):
            record.extend([None] * (slot - len(record) + 1))
        previous = record[slot]
        stored = None if cell.is_empty else (cell.value, cell.formula)
        record[slot] = stored
        new_pointer = self._heap.update(pointer, tuple(record))
        if new_pointer != pointer:
            self._replace_pointer(major, new_pointer)
        if previous is None and stored is not None:
            self._filled += 1
        elif previous is not None and stored is None:
            self._filled -= 1

    def set_major_line(self, major: int, cells: dict[int, Cell]) -> None:
        """Write many cells of one major line with a single record update.

        The bulk-load path: building a long line cell-by-cell through
        :meth:`set` rewrites the stored tuple per cell (quadratic once the
        record overflows onto a heap chain); this writes the line once.
        """
        if major < 1 or any(minor < 1 for minor in cells):
            raise DataModelError(f"positions must be >= 1, got major {major}")
        if not cells:
            return
        self.ensure_major(major)
        self.ensure_minor(max(cells))
        pointer = self._mapping.fetch(major)
        record = list(self._heap.read(pointer))
        for minor, cell in cells.items():
            slot = self._minor_slots[minor - 1]
            if slot >= len(record):
                record.extend([None] * (slot - len(record) + 1))
            previous = record[slot]
            stored = None if cell.is_empty else (cell.value, cell.formula)
            record[slot] = stored
            if previous is None and stored is not None:
                self._filled += 1
            elif previous is not None and stored is None:
                self._filled -= 1
        new_pointer = self._heap.update(pointer, tuple(record))
        if new_pointer != pointer:
            self._replace_pointer(major, new_pointer)

    # ------------------------------------------------------------------ #
    # structural operations
    # ------------------------------------------------------------------ #
    def insert_major_after(self, major: int, count: int = 1) -> None:
        """Insert ``count`` empty major lines after position ``major`` (0 = before first).

        A position at or beyond the stored extent is implicit empty space:
        inserting there shifts nothing stored, so it is a no-op (the mapping
        extends lazily when a cell is actually written).
        """
        if major < 0 or count < 1:
            raise DataModelError(f"invalid major insert ({major}, count={count})")
        if major >= self.major_count:
            return
        for offset in range(count):
            pointer = self._heap.insert(())
            self._mapping.insert_at(major + 1 + offset, pointer)

    def delete_major(self, major: int, count: int = 1) -> None:
        """Delete up to ``count`` major lines starting at ``major``.

        The span clips to the stored extent — deleting lines past the last
        stored major line removes nothing (they are implicit empty space).
        """
        if major < 1 or count < 1:
            raise DataModelError(f"invalid major delete ({major}, count={count})")
        for pointer in self._mapping.delete_span(major, count):
            record = self._heap.read(pointer)
            self._filled -= sum(1 for stored in record if stored is not None)
            self._heap.delete(pointer)

    def insert_minor_after(self, minor: int, count: int = 1) -> None:
        """Insert ``count`` empty minor lines after position ``minor`` (0 = before first).

        Like :meth:`insert_major_after`, positions at or beyond the stored
        extent are implicit empty space and the insert is a lazy no-op.
        """
        if minor < 0 or count < 1:
            raise DataModelError(f"invalid minor insert ({minor}, count={count})")
        if minor >= self.minor_count:
            return
        new_slots = []
        for _ in range(count):
            new_slots.append(self._next_slot)
            self._next_slot += 1
        self._minor_slots[minor:minor] = new_slots

    def delete_minor(self, minor: int, count: int = 1) -> None:
        """Delete up to ``count`` minor lines starting at ``minor`` (clipped)."""
        if minor < 1 or count < 1:
            raise DataModelError(f"invalid minor delete ({minor}, count={count})")
        end = min(minor + count - 1, self.minor_count)
        if end < minor:
            return
        removed_slots = set(self._minor_slots[minor - 1: end])
        del self._minor_slots[minor - 1: end]
        # Account for cells that disappear with the deleted minor lines.
        for position in range(1, self.major_count + 1):
            record = self._read_record(position)
            for slot in removed_slots:
                if slot < len(record) and record[slot] is not None:
                    self._filled -= 1

    # ------------------------------------------------------------------ #
    def iter_filled(self) -> Iterator[tuple[int, int, Cell]]:
        """Iterate ``(major, minor, cell)`` for every filled cell."""
        slot_to_minor = {slot: index + 1 for index, slot in enumerate(self._minor_slots)}
        for major in range(1, self.major_count + 1):
            record = self._read_record(major)
            for slot, stored in enumerate(record):
                if stored is None:
                    continue
                minor = slot_to_minor.get(slot)
                if minor is not None:
                    yield major, minor, _to_cell(stored)

    # ------------------------------------------------------------------ #
    def _read_record(self, major: int) -> tuple:
        return self._heap.read(self._mapping.fetch(major))

    def _replace_pointer(self, major: int, pointer: TuplePointer) -> None:
        self._mapping.replace_at(major, pointer)


def _to_cell(stored: StoredCell | None) -> Cell:
    if stored is None:
        return Cell()
    value, formula = stored
    return Cell(value=value, formula=formula)
