"""Table-Oriented Model (TOM): a database-linked table shown on the sheet.

``linkTable(range, tableName)`` establishes a two-way correspondence between
a spreadsheet region and a database relation (Section III): the region shows
a header row with the column names followed by one row per record, and cell
updates through the model write back to the underlying table.
"""

from __future__ import annotations

from repro.errors import LinkTableError
from repro.grid.address import CellAddress
from repro.grid.cell import Cell
from repro.grid.range import RangeRef
from repro.models.base import DataModel, ModelKind
from repro.storage.costs import CostParameters
from repro.storage.database import Table
from repro.storage.tuples import TuplePointer


class TableOrientedModel(DataModel):
    """A two-way linked view of a database table anchored at (top, left)."""

    kind = ModelKind.TOM

    def __init__(self, table: Table, top: int = 1, left: int = 1, *, header: bool = True) -> None:
        self._table = table
        self._top = top
        self._left = left
        self._header = header
        # Presentational row order of the linked records.
        self._pointers: list[TuplePointer] = [pointer for pointer, _ in table.scan()]

    # ------------------------------------------------------------------ #
    @property
    def table(self) -> Table:
        """The linked database table."""
        return self._table

    @property
    def has_header(self) -> bool:
        """Whether the first presentational row shows column names."""
        return self._header

    def refresh(self) -> None:
        """Re-read the record list from the table (after external DML)."""
        self._pointers = [pointer for pointer, _ in self._table.scan()]

    # ------------------------------------------------------------------ #
    def region(self) -> RangeRef:
        rows = len(self._pointers) + (1 if self._header else 0)
        columns = self._table.schema.column_count
        return RangeRef(
            self._top,
            self._left,
            self._top + max(rows, 1) - 1,
            self._left + max(columns, 1) - 1,
        )

    def cell_count(self) -> int:
        columns = self._table.schema.column_count
        header_cells = columns if self._header else 0
        return header_cells + len(self._pointers) * columns

    def get_cells(self, region: RangeRef) -> dict[CellAddress, Cell]:
        own = self.region()
        overlap = own.intersection(region)
        if overlap is None:
            return {}
        result: dict[CellAddress, Cell] = {}
        names = self._table.schema.column_names
        header_offset = 1 if self._header else 0
        for row in range(overlap.top, overlap.bottom + 1):
            relative = row - self._top
            if self._header and relative == 0:
                for column in range(overlap.left, overlap.right + 1):
                    name = names[column - self._left]
                    result[CellAddress(row, column)] = Cell(value=name)
                continue
            record_index = relative - header_offset
            if record_index < 0 or record_index >= len(self._pointers):
                continue
            record = self._table.read(self._pointers[record_index])
            for column in range(overlap.left, overlap.right + 1):
                value = record[column - self._left]
                if value is not None:
                    result[CellAddress(row, column)] = Cell(value=value)
        return result

    # ------------------------------------------------------------------ #
    def update_cell(self, row: int, column: int, cell: Cell) -> None:
        relative_row = row - self._top
        relative_column = column - self._left
        if relative_column < 0 or relative_column >= self._table.schema.column_count:
            raise LinkTableError(f"column {column} is outside the linked table")
        if self._header and relative_row == 0:
            raise LinkTableError("cannot overwrite the header row of a linked table")
        record_index = relative_row - (1 if self._header else 0)
        if record_index < 0 or record_index >= len(self._pointers):
            raise LinkTableError(f"row {row} is outside the linked table")
        pointer = self._pointers[record_index]
        record = list(self._table.read(pointer))
        record[relative_column] = cell.value
        new_pointer = self._table.update(pointer, tuple(record))
        self._pointers[record_index] = new_pointer

    def check_structural_edit(self, axis: str, kind: str, line: int, count: int) -> None:
        """Refuse edits a linked table cannot absorb, before anything mutates.

        Column structure is the table's schema, and the header row is
        generated from it — neither can be edited through the grid.  Row
        deletes must land entirely on data records (the hybrid router has
        already clipped ``line``/``count`` to this region's overlap).
        """
        if axis == "column":
            raise LinkTableError(
                f"column {kind} on a linked table requires a schema change"
            )
        if kind == "delete":
            record_index = line - self._top - (1 if self._header else 0)
            if record_index < 0 or record_index + count > len(self._pointers):
                raise LinkTableError(
                    f"rows [{line}, {line + count - 1}] are outside the linked table"
                )

    def insert_row_after(self, row: int, count: int = 1) -> None:
        """Insert blank records after the presentational ``row``."""
        record_index = row - self._top - (1 if self._header else 0) + 1
        record_index = min(max(record_index, 0), len(self._pointers))
        blank = tuple(None for _ in self._table.schema.columns)
        for offset in range(count):
            pointer = self._table.insert(blank)
            self._pointers.insert(record_index + offset, pointer)

    def delete_row(self, row: int, count: int = 1) -> None:
        record_index = row - self._top - (1 if self._header else 0)
        if record_index < 0 or record_index + count > len(self._pointers):
            raise LinkTableError(f"rows [{row}, {row + count - 1}] are outside the linked table")
        for _ in range(count):
            pointer = self._pointers.pop(record_index)
            self._table.delete(pointer)

    def insert_column_after(self, column: int, count: int = 1) -> None:
        raise LinkTableError("column insertion on a linked table requires a schema change")

    def delete_column(self, column: int, count: int = 1) -> None:
        raise LinkTableError("column deletion on a linked table requires a schema change")

    def shift(self, rows: int = 0, columns: int = 0) -> None:
        """Translate the linked region (used by the hybrid model)."""
        self._top += rows
        self._left += columns

    # ------------------------------------------------------------------ #
    def storage_cost(self, costs: CostParameters) -> float:
        """TOM data is stored as-is in the database: a ROM-shaped table cost."""
        return costs.rom_cost(len(self._pointers), self._table.schema.column_count)
