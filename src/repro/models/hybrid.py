"""Hybrid data model: multiple primitive models over disjoint regions.

Definition 1 of the paper: a hybrid data model is a collection of tables,
each a ROM, COM, RCV or TOM table over a rectangular region, that together
are *recoverable* with respect to the conceptual cells.  The hybrid model
routes ``get_cells``/``update_cell`` to the owning region; cells outside any
region fall into a catch-all RCV table (the paper notes a single RCV table
suffices for all loose cells).

Row/column structural operations shift the anchors of regions below/right of
the edit and delegate to the models whose regions span the edited line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import RegionOverlapError
from repro.grid.address import CellAddress
from repro.grid.cell import Cell, CellValue
from repro.grid.range import RangeRef
from repro.grid.sheet import Sheet
from repro.grid.structural import check_delete_line, check_insert_line
from repro.models.base import DataModel, ModelKind
from repro.models.com import ColumnOrientedModel
from repro.models.rcv import RowColumnValueModel
from repro.models.rom import RowOrientedModel
from repro.storage.costs import CostParameters


@dataclass
class HybridRegion:
    """One constituent of a hybrid model: a region and the model storing it."""

    range: RangeRef
    model: DataModel

    @property
    def kind(self) -> ModelKind:
        """The primitive model kind used for this region."""
        return self.model.kind


class HybridDataModel(DataModel):
    """Routes spreadsheet operations across a set of disjoint regions."""

    kind = ModelKind.ROM  # the hybrid itself has no single kind; ROM is a placeholder

    def __init__(
        self,
        regions: Iterable[HybridRegion] = (),
        *,
        mapping_scheme: str = "hierarchical",
        allow_overlap: bool = False,
    ) -> None:
        self._regions: list[HybridRegion] = []
        self._mapping_scheme = mapping_scheme
        self._catch_all: RowColumnValueModel | None = None
        self._has_overlaps = False
        #: Observability counters for bulk reads (``get_cells``/``get_values``):
        #: number of calls and total cell area requested.  The query executor's
        #: streaming guarantees are asserted against these in tests.
        self.bulk_reads = 0
        self.cells_read = 0
        for region in regions:
            self.add_region(region, allow_overlap=allow_overlap)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_decomposition(
        cls,
        sheet: Sheet,
        regions: Sequence[tuple[RangeRef, ModelKind]],
        *,
        mapping_scheme: str = "hierarchical",
    ) -> "HybridDataModel":
        """Materialise a hybrid model from a decomposition plan.

        ``regions`` is typically the output of the decomposition algorithms in
        :mod:`repro.decomposition`; cells of ``sheet`` not covered by any
        listed region go to the catch-all RCV table.
        """
        hybrid = cls(mapping_scheme=mapping_scheme)
        covered: set[tuple[int, int]] = set()
        for region, kind in regions:
            model = _build_primitive(sheet, region, kind, mapping_scheme)
            hybrid.add_region(HybridRegion(range=region, model=model))
            for address in region.addresses():
                covered.add((address.row, address.column))
        for (row, column), cell in ((key, sheet.get_cell(*key)) for key in sheet.coordinates()):
            if (row, column) not in covered:
                hybrid.update_cell(row, column, cell)
        return hybrid

    def add_region(self, region: HybridRegion, *, allow_overlap: bool = False) -> None:
        """Add a constituent region; rejects overlaps unless permitted."""
        for existing in self._regions:
            if existing.range.overlaps(region.range):
                if not allow_overlap:
                    raise RegionOverlapError(
                        f"region {region.range.to_a1()} overlaps {existing.range.to_a1()}"
                    )
                self._has_overlaps = True
        self._regions.append(region)

    @property
    def regions(self) -> list[HybridRegion]:
        """The constituent regions (excluding the catch-all RCV table)."""
        return list(self._regions)

    @property
    def catch_all(self) -> RowColumnValueModel | None:
        """The RCV table holding cells outside every region (may be ``None``)."""
        return self._catch_all

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def region(self) -> RangeRef:
        boxes = [entry.range for entry in self._regions]
        if self._catch_all is not None and self._catch_all.cell_count() > 0:
            boxes.append(self._catch_all.region())
        if not boxes:
            return RangeRef(1, 1, 1, 1)
        combined = boxes[0]
        for box in boxes[1:]:
            combined = combined.union_bounding(box)
        return combined

    def cell_count(self) -> int:
        total = sum(entry.model.cell_count() for entry in self._regions)
        if self._catch_all is not None:
            total += self._catch_all.cell_count()
        return total

    def get_cells(self, region: RangeRef) -> dict[CellAddress, Cell]:
        """Bulk cell read with the same per-cell precedence as ``get_cell``:
        the first containing region owns a coordinate (even where it stores
        nothing) and the catch-all only supplies coordinates outside every
        region."""
        self._count_bulk_read(region)
        return self._merge_owned(
            region,
            lambda model: model.get_cells(region),
            lambda address: (address.row, address.column),
        )

    def get_values(self, region: RangeRef) -> dict[tuple[int, int], CellValue]:
        """Bulk value read; per-cell precedence matches ``get_cell`` exactly
        (first containing region wins, catch-all fills only unowned
        coordinates), so range formulas agree with per-cell reads."""
        self._count_bulk_read(region)
        return self._merge_owned(region, lambda model: model.get_values(region), lambda key: key)

    def get_values_dense(self, region: RangeRef) -> list[CellValue]:
        """Dense row-major slab with the same precedence as ``get_values``.

        The hot shapes delegate wholesale: a request owned entirely by one
        constituent region (or by no region at all — pure catch-all) is one
        dense read of that model.  Mixed ownership falls back to scattering
        the precedence-merged ``_merge_owned`` read into the slab.
        """
        self._count_bulk_read(region)
        overlapping = [entry for entry in self._regions
                       if entry.range.overlaps(region)]
        if not overlapping:
            if self._catch_all is None:
                return [None] * region.area
            return self._catch_all.get_values_dense(region)
        if len(overlapping) == 1 and overlapping[0].range.contains_range(region):
            return overlapping[0].model.get_values_dense(region)
        width = region.right - region.left + 1
        dense: list[CellValue] = [None] * region.area
        top, left = region.top, region.left
        merged = self._merge_owned(
            region, lambda model: model.get_values(region), lambda key: key)
        for (row, column), value in merged.items():
            dense[(row - top) * width + (column - left)] = value
        return dense

    def _count_bulk_read(self, region: RangeRef) -> None:
        self.bulk_reads += 1
        self.cells_read += (region.bottom - region.top + 1) * (
            region.right - region.left + 1
        )

    def reset_read_counters(self) -> None:
        """Zero the bulk-read observability counters."""
        self.bulk_reads = 0
        self.cells_read = 0

    def _merge_owned(self, region, read, coords):
        """Merge per-model bulk reads under ``get_cell`` precedence.

        ``read`` performs the bulk read against one model; ``coords`` maps a
        result key to its (row, column).  A later model only contributes
        keys outside every earlier region's rectangle, and a model whose
        visible slice is entirely inside one earlier rectangle is skipped
        without being read at all.
        """
        result: dict = {}
        claimed: list[RangeRef] = []
        for entry in self._regions:
            if not entry.range.overlaps(region):
                continue
            visible = entry.range.intersection(region)
            if any(box.contains_range(visible) for box in claimed):
                continue
            self._merge_unclaimed(result, read(entry.model), claimed, coords)
            claimed.append(entry.range)
        if self._catch_all is not None and not any(
            box.contains_range(region) for box in claimed
        ):
            self._merge_unclaimed(result, read(self._catch_all), claimed, coords)
        return result

    @staticmethod
    def _merge_unclaimed(result: dict, items: dict, claimed: list[RangeRef], coords) -> None:
        if not claimed:
            result.update(items)
            return
        for key, value in items.items():
            row, column = coords(key)
            if not any(box.contains_coordinates(row, column) for box in claimed):
                result[key] = value

    def get_cell(self, row: int, column: int) -> Cell:
        owner = self._owning_region(row, column)
        if owner is not None:
            return owner.model.get_cell(row, column)
        if self._catch_all is not None:
            return self._catch_all.get_cell(row, column)
        return Cell()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def update_cell(self, row: int, column: int, cell: Cell) -> None:
        owner = self._owning_region(row, column)
        if owner is not None:
            owner.model.update_cell(row, column, cell)
            return
        self._update_catch_all(row, column, cell)

    def update_cells(self, items: Iterable[tuple[int, int, Cell]]) -> None:
        """Bulk write: route many cells to their owning regions in one pass.

        Consecutive cells usually land in the same region, so the owner
        found for the previous cell is retried before the linear region
        lookup — bulk imports pay the routing cost once per region run, not
        once per cell.  When overlapping regions exist (linked tables), the
        cached owner may not be the *first* containing region, so the fast
        path is disabled to keep routing identical to ``update_cell``.

        Runs of cells bound for the same model are handed over through that
        model's own ``update_cells``, so a model with a bulk path (RCV
        batching its positional-mapping lookups, including the catch-all
        table) sees the whole run at once.
        """
        reuse_owner = not self._has_overlaps
        owner: HybridRegion | None = None
        have_owner = False
        run: list[tuple[int, int, Cell]] = []

        def flush_run(target: HybridRegion | None) -> None:
            if not run:
                return
            if target is not None:
                target.model.update_cells(run)
            else:
                if self._catch_all is None:
                    first_row, first_column, _cell = run[0]
                    self._catch_all = RowColumnValueModel(
                        top=first_row, left=first_column,
                        mapping_scheme=self._mapping_scheme,
                    )
                self._catch_all.update_cells(run)
            run.clear()

        for row, column, cell in items:
            if reuse_owner and have_owner and owner is not None \
                    and owner.range.contains_coordinates(row, column):
                next_owner = owner
            else:
                next_owner = self._owning_region(row, column)
            if not have_owner or next_owner is not owner:
                flush_run(owner)
                owner = next_owner
                have_owner = True
            run.append((row, column, cell))
        flush_run(owner)

    def _update_catch_all(self, row: int, column: int, cell: Cell) -> None:
        if self._catch_all is None:
            self._catch_all = RowColumnValueModel(
                top=row, left=column, mapping_scheme=self._mapping_scheme
            )
        self._catch_all.update_cell(row, column, cell)

    def _preflight_row_edit(self, kind: str, row: int, count: int) -> None:
        """Validate a row edit against every model it will be delegated to.

        Runs before any region shifts so a model that must refuse (a linked
        table) fails the whole edit atomically, never mid-loop.
        """
        last = row + count - 1
        for entry in self._regions:
            if kind == "insert":
                if entry.range.top <= row < entry.range.bottom:
                    entry.model.check_structural_edit("row", kind, row, count)
                continue
            overlap_top = max(entry.range.top, row)
            overlap_bottom = min(entry.range.bottom, last)
            if overlap_top <= overlap_bottom:
                entry.model.check_structural_edit(
                    "row", kind, overlap_top, overlap_bottom - overlap_top + 1
                )

    def _preflight_column_edit(self, kind: str, column: int, count: int) -> None:
        """Column-axis counterpart of :meth:`_preflight_row_edit`."""
        last = column + count - 1
        for entry in self._regions:
            if kind == "insert":
                if entry.range.left <= column < entry.range.right:
                    entry.model.check_structural_edit("column", kind, column, count)
                continue
            overlap_left = max(entry.range.left, column)
            overlap_right = min(entry.range.right, last)
            if overlap_left <= overlap_right:
                entry.model.check_structural_edit(
                    "column", kind, overlap_left, overlap_right - overlap_left + 1
                )

    def insert_row_after(self, row: int, count: int = 1) -> None:
        check_insert_line(row, count, axis="row")
        self._preflight_row_edit("insert", row, count)
        for entry in self._regions:
            if entry.range.top > row:
                entry.model.shift(rows=count)  # type: ignore[attr-defined]
                entry.range = entry.range.shifted(rows=count)
            elif entry.range.bottom > row:
                entry.model.insert_row_after(row, count)
                entry.range = RangeRef(
                    entry.range.top, entry.range.left,
                    entry.range.bottom + count, entry.range.right,
                )
        if self._catch_all is not None:
            self._catch_all.insert_row_after(row, count)

    def delete_row(self, row: int, count: int = 1) -> None:
        check_delete_line(row, count, axis="row")
        self._preflight_row_edit("delete", row, count)
        last = row + count - 1
        for entry in self._regions:
            if entry.range.top > last:
                # Entirely below the deletion: the whole region shifts up.
                entry.model.shift(rows=-count)  # type: ignore[attr-defined]
                entry.range = entry.range.shifted(rows=-count)
                continue
            overlap_top = max(entry.range.top, row)
            overlap_bottom = min(entry.range.bottom, last)
            if overlap_top > overlap_bottom:
                continue  # entirely above the deletion: unaffected
            # Deleted lines strictly above the region re-anchor it upward;
            # the overlapping lines shrink it.
            above = max(0, entry.range.top - row)
            removed = overlap_bottom - overlap_top + 1
            entry.model.delete_row(overlap_top, removed)
            if above:
                entry.model.shift(rows=-above)  # type: ignore[attr-defined]
            new_top = entry.range.top - above
            entry.range = RangeRef(
                new_top, entry.range.left,
                max(entry.range.bottom - above - removed, new_top), entry.range.right,
            )
        if self._catch_all is not None:
            self._catch_all.delete_row(row, count)

    def insert_column_after(self, column: int, count: int = 1) -> None:
        check_insert_line(column, count, axis="column")
        self._preflight_column_edit("insert", column, count)
        for entry in self._regions:
            if entry.range.left > column:
                entry.model.shift(columns=count)  # type: ignore[attr-defined]
                entry.range = entry.range.shifted(columns=count)
            elif entry.range.right > column:
                entry.model.insert_column_after(column, count)
                entry.range = RangeRef(
                    entry.range.top, entry.range.left,
                    entry.range.bottom, entry.range.right + count,
                )
        if self._catch_all is not None:
            self._catch_all.insert_column_after(column, count)

    def delete_column(self, column: int, count: int = 1) -> None:
        check_delete_line(column, count, axis="column")
        self._preflight_column_edit("delete", column, count)
        last = column + count - 1
        for entry in self._regions:
            if entry.range.left > last:
                entry.model.shift(columns=-count)  # type: ignore[attr-defined]
                entry.range = entry.range.shifted(columns=-count)
                continue
            overlap_left = max(entry.range.left, column)
            overlap_right = min(entry.range.right, last)
            if overlap_left > overlap_right:
                continue
            above = max(0, entry.range.left - column)
            removed = overlap_right - overlap_left + 1
            entry.model.delete_column(overlap_left, removed)
            if above:
                entry.model.shift(columns=-above)  # type: ignore[attr-defined]
            new_left = entry.range.left - above
            entry.range = RangeRef(
                entry.range.top, new_left,
                entry.range.bottom, max(entry.range.right - above - removed, new_left),
            )
        if self._catch_all is not None:
            self._catch_all.delete_column(column, count)

    def shift(self, rows: int = 0, columns: int = 0) -> None:
        """Translate every constituent region."""
        for entry in self._regions:
            entry.model.shift(rows=rows, columns=columns)  # type: ignore[attr-defined]
            entry.range = entry.range.shifted(rows=rows, columns=columns)
        if self._catch_all is not None:
            self._catch_all.shift(rows=rows, columns=columns)

    # ------------------------------------------------------------------ #
    def storage_cost(self, costs: CostParameters) -> float:
        total = sum(entry.model.storage_cost(costs) for entry in self._regions)
        if self._catch_all is not None:
            total += self._catch_all.storage_cost(costs)
        return total

    # ------------------------------------------------------------------ #
    def _owning_region(self, row: int, column: int) -> HybridRegion | None:
        for entry in self._regions:
            if entry.range.contains_coordinates(row, column):
                return entry
        return None


def _build_primitive(
    sheet: Sheet, region: RangeRef, kind: ModelKind, mapping_scheme: str
) -> DataModel:
    if kind is ModelKind.ROM:
        return RowOrientedModel.from_sheet(sheet, region, mapping_scheme=mapping_scheme)
    if kind is ModelKind.COM:
        return ColumnOrientedModel.from_sheet(sheet, region, mapping_scheme=mapping_scheme)
    if kind is ModelKind.RCV:
        return RowColumnValueModel.from_sheet(sheet, region, mapping_scheme=mapping_scheme)
    raise ValueError(f"cannot build a {kind} region from a sheet without a linked table")
