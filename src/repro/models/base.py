"""The common interface of physical data models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum

from repro.grid.address import CellAddress
from repro.grid.cell import Cell, CellValue
from repro.grid.range import RangeRef
from repro.grid.sheet import Sheet
from repro.storage.costs import CostParameters


class ModelKind(str, Enum):
    """The kind of a primitive data model (used by the hybrid optimizer)."""

    ROM = "rom"
    COM = "com"
    RCV = "rcv"
    TOM = "tom"


class DataModel(ABC):
    """A physical representation of the cells of one spreadsheet region.

    All coordinates in the interface are *absolute* sheet coordinates
    (1-based); each model anchors itself at the top-left of the region it was
    created for and translates internally.

    The interface mirrors the spreadsheet-oriented operations of Section III:
    ``get_cells``, ``update_cell``, and row/column insert/delete.
    """

    kind: ModelKind

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    @abstractmethod
    def region(self) -> RangeRef:
        """The rectangular region currently covered by this model."""

    @abstractmethod
    def get_cells(self, region: RangeRef) -> dict[CellAddress, Cell]:
        """Return the filled cells of this model that fall inside ``region``."""

    def get_values(self, region: RangeRef) -> dict[tuple[int, int], CellValue]:
        """Bulk value read: ``{(row, column): value}`` for filled cells.

        This is the allocation-light path used to materialise formula range
        references; subclasses override it to skip per-cell
        :class:`CellAddress` construction entirely.
        """
        return {
            (address.row, address.column): cell.value
            for address, cell in self.get_cells(region).items()
        }

    def get_values_dense(self, region: RangeRef) -> list[CellValue]:
        """Dense row-major slab of ``region``'s values (``None`` = blank).

        The bulk-read contract behind the vectorized columnar aggregate
        path: one flat ``region.area``-long list the caller can reduce
        without per-cell dictionary probes.  The default scatters
        :meth:`get_values` into the slab; ordered stores override it to
        walk their layout directly.
        """
        width = region.right - region.left + 1
        dense: list[CellValue] = [None] * region.area
        top, left = region.top, region.left
        for (row, column), value in self.get_values(region).items():
            dense[(row - top) * width + (column - left)] = value
        return dense

    @abstractmethod
    def cell_count(self) -> int:
        """Number of filled cells stored."""

    def get_cell(self, row: int, column: int) -> Cell:
        """Single-cell read (empty cells come back as ``Cell()``)."""
        cells = self.get_cells(RangeRef(row, column, row, column))
        return cells.get(CellAddress(row, column), Cell())

    def get_value(self, row: int, column: int) -> CellValue:
        """Single-value read."""
        return self.get_cell(row, column).value

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    @abstractmethod
    def update_cell(self, row: int, column: int, cell: Cell) -> None:
        """Set the cell at an absolute (row, column) inside the region."""

    def update_cells(self, items) -> None:
        """Bulk write many ``(row, column, cell)`` triples.

        Subclasses override this to amortise per-cell overhead (e.g. RCV
        resolves each distinct row/column identifier once per bulk write).
        """
        for row, column, cell in items:
            self.update_cell(row, column, cell)

    def check_structural_edit(self, axis: str, kind: str, line: int, count: int) -> None:
        """Pre-flight hook: raise if this model cannot absorb a structural edit.

        The hybrid router calls this for every model it is about to
        delegate an (already overlap-clipped) edit to, *before* mutating
        anything — so a model that must refuse (a linked table whose header
        the span touches, or any column edit on one) fails the whole
        operation atomically instead of mid-loop with sibling regions
        already shifted.  Extent-free models absorb any edit: the default
        accepts everything.
        """

    @abstractmethod
    def insert_row_after(self, row: int, count: int = 1) -> None:
        """Insert ``count`` empty rows after absolute row ``row``."""

    @abstractmethod
    def delete_row(self, row: int, count: int = 1) -> None:
        """Delete ``count`` rows starting at absolute row ``row``."""

    @abstractmethod
    def insert_column_after(self, column: int, count: int = 1) -> None:
        """Insert ``count`` empty columns after absolute column ``column``."""

    @abstractmethod
    def delete_column(self, column: int, count: int = 1) -> None:
        """Delete ``count`` columns starting at absolute column ``column``."""

    # ------------------------------------------------------------------ #
    # accounting / recoverability
    # ------------------------------------------------------------------ #
    @abstractmethod
    def storage_cost(self, costs: CostParameters) -> float:
        """Cost-model storage footprint of this model (Equation 1 family)."""

    def to_sheet(self) -> Sheet:
        """Recover the conceptual collection of cells stored by this model."""
        sheet = Sheet()
        for address, cell in self.get_cells(self.region()).items():
            sheet.set_cell(address.row, address.column, cell)
        return sheet

    # ------------------------------------------------------------------ #
    def update_value(self, row: int, column: int, value: CellValue) -> None:
        """Convenience: set a constant value at (row, column)."""
        self.update_cell(row, column, Cell(value=value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(region={self.region().to_a1()}, cells={self.cell_count()})"
