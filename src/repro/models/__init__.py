"""Primitive and hybrid physical data models (Section IV).

A *physical data model* records the cells of a spreadsheet region inside the
database substrate.  Four primitive models are provided, mirroring the paper:

* :class:`~repro.models.rom.RowOrientedModel` (ROM) — one tuple per sheet row.
* :class:`~repro.models.com.ColumnOrientedModel` (COM) — one tuple per sheet
  column (the transpose of ROM).
* :class:`~repro.models.rcv.RowColumnValueModel` (RCV) — one tuple per filled
  cell, key-value style.
* :class:`~repro.models.tom.TableOrientedModel` (TOM) — a database-linked
  table displayed on the sheet.

:class:`~repro.models.hybrid.HybridDataModel` composes any number of these
over disjoint rectangular regions and routes operations to the owning region.
"""

from repro.models.base import DataModel, ModelKind
from repro.models.rom import RowOrientedModel
from repro.models.com import ColumnOrientedModel
from repro.models.rcv import RowColumnValueModel
from repro.models.tom import TableOrientedModel
from repro.models.hybrid import HybridDataModel, HybridRegion

__all__ = [
    "DataModel",
    "ModelKind",
    "RowOrientedModel",
    "ColumnOrientedModel",
    "RowColumnValueModel",
    "TableOrientedModel",
    "HybridDataModel",
    "HybridRegion",
]
