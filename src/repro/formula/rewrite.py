"""Structural-edit reference rewriting (row/column inserts and deletes).

When rows or columns are inserted or deleted, stored cells shift — and every
formula reference pointing at them must shift too, or the formula silently
reads the wrong cells.  This module is the single source of truth for that
coordinate arithmetic:

* :class:`StructuralEdit` describes one edit (axis + insert/delete + line +
  count) and maps individual lines, addresses, and rectangular spans through
  it.  A reference whose entire referent falls inside a deletion maps to
  ``None``.
* :func:`rewrite_formula` applies an edit to a parsed AST with a structural
  visitor: ``CellRefNode``/``RangeRefNode`` leaves are shifted (ranges that
  straddle the edit expand or contract), fully deleted referents collapse to
  an ``ErrorNode("#REF!")``, and interior nodes are rebuilt only along paths
  that actually changed, so untouched subtrees stay shared with the original
  AST.

The same mapping functions drive :meth:`DependencyGraph.apply_structural_edit
<repro.formula.dependencies.DependencyGraph.apply_structural_edit>`, which
re-keys dependency registrations, and the engine/sheet layers, which rewrite
stored formula text — guaranteeing the graph and the text can never disagree
about where a reference landed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formula.ast_nodes import (
    BinaryOpNode,
    CellRefNode,
    ErrorNode,
    FormulaNode,
    FunctionCallNode,
    RangeRefNode,
    UnaryOpNode,
)
from repro.grid.address import MAX_COLUMNS, MAX_ROWS, CellAddress
from repro.grid.range import RangeRef

#: The node a fully deleted referent collapses to.
REF_ERROR = ErrorNode(code="#REF!")


@dataclass(frozen=True, slots=True)
class StructuralEdit:
    """One structural edit: insert or delete ``count`` rows or columns.

    ``line`` is the 1-based row/column index the edit anchors on: for an
    insert, new lines appear immediately *after* ``line`` (0 inserts before
    the first line); for a delete, ``line`` is the *first* deleted line.
    """

    axis: str      # "row" or "column"
    kind: str      # "insert" or "delete"
    line: int
    count: int

    def __post_init__(self) -> None:
        if self.axis not in ("row", "column"):
            raise ValueError(f"unknown axis {self.axis!r}")
        if self.kind not in ("insert", "delete"):
            raise ValueError(f"unknown edit kind {self.kind!r}")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    # ------------------------------------------------------------------ #
    # constructors mirroring the engine's structural operations
    # ------------------------------------------------------------------ #
    @classmethod
    def insert_rows(cls, after: int, count: int = 1) -> "StructuralEdit":
        """Rows inserted immediately after row ``after``."""
        return cls(axis="row", kind="insert", line=after, count=count)

    @classmethod
    def delete_rows(cls, first: int, count: int = 1) -> "StructuralEdit":
        """Rows ``first .. first+count-1`` deleted."""
        return cls(axis="row", kind="delete", line=first, count=count)

    @classmethod
    def insert_columns(cls, after: int, count: int = 1) -> "StructuralEdit":
        """Columns inserted immediately after column ``after``."""
        return cls(axis="column", kind="insert", line=after, count=count)

    @classmethod
    def delete_columns(cls, first: int, count: int = 1) -> "StructuralEdit":
        """Columns ``first .. first+count-1`` deleted."""
        return cls(axis="column", kind="delete", line=first, count=count)

    # ------------------------------------------------------------------ #
    # coordinate mapping
    # ------------------------------------------------------------------ #
    def map_line(self, line: int) -> int | None:
        """Where one row/column index lands, or ``None`` when deleted."""
        if self.kind == "insert":
            return line + self.count if line > self.line else line
        if line < self.line:
            return line
        if line < self.line + self.count:
            return None
        return line - self.count

    def map_span(self, start: int, end: int) -> tuple[int, int] | None:
        """Where an inclusive ``[start, end]`` span lands.

        A span straddling an insert expands; a span overlapping a deletion
        contracts; a span entirely inside a deletion maps to ``None``.
        """
        if self.kind == "insert":
            return (
                start + self.count if start > self.line else start,
                end + self.count if end > self.line else end,
            )
        first, past = self.line, self.line + self.count
        if end < first:
            return start, end
        if start >= past:
            return start - self.count, end - self.count
        new_start = start if start < first else first
        new_end = end - self.count if end >= past else first - 1
        if new_start > new_end:
            return None
        return new_start, new_end

    @property
    def _axis_limit(self) -> int:
        """The largest legal index on the edited axis."""
        return MAX_ROWS if self.axis == "row" else MAX_COLUMNS

    def map_address(self, address: CellAddress) -> CellAddress | None:
        """Where a cell address lands, or ``None`` when its cell is gone.

        A cell is gone either because it was deleted or because an insert
        pushed it past the sheet's row/column limit (off the sheet).
        """
        if self.axis == "row":
            row = self.map_line(address.row)
            if row is None or row > MAX_ROWS:
                return None
            return CellAddress(row, address.column)
        column = self.map_line(address.column)
        if column is None or column > MAX_COLUMNS:
            return None
        return CellAddress(address.row, column)

    def map_range(self, region: RangeRef) -> RangeRef | None:
        """Where a rectangular range lands, or ``None`` when fully gone.

        A range pushed partially past the sheet's row/column limit by an
        insert is clamped to the limit; one pushed entirely past it maps to
        ``None`` like a fully deleted range.
        """
        if self.axis == "row":
            span = self.map_span(region.top, region.bottom)
            if span is None or span[0] > MAX_ROWS:
                return None
            return RangeRef(span[0], region.left, min(span[1], MAX_ROWS), region.right)
        span = self.map_span(region.left, region.right)
        if span is None or span[0] > MAX_COLUMNS:
            return None
        return RangeRef(region.top, span[0], region.bottom, min(span[1], MAX_COLUMNS))


def rewrite_formula(node: FormulaNode, edit: StructuralEdit) -> tuple[FormulaNode, bool]:
    """Rewrite every reference in ``node`` through ``edit``.

    Returns ``(rewritten, changed)``.  When nothing the formula references is
    affected by the edit, the original node is returned unchanged (and
    unshared subtrees are likewise reused), so callers can skip re-serializing
    untouched formulas.
    """
    if isinstance(node, CellRefNode):
        moved = edit.map_address(node.address)
        if moved is None:
            return REF_ERROR, True
        if moved == node.address:
            return node, False
        return CellRefNode(
            address=moved,
            column_absolute=node.column_absolute,
            row_absolute=node.row_absolute,
        ), True
    if isinstance(node, RangeRefNode):
        moved = edit.map_range(node.range)
        if moved is None:
            return REF_ERROR, True
        if moved == node.range:
            return node, False
        return RangeRefNode(
            range=moved,
            start_column_absolute=node.start_column_absolute,
            start_row_absolute=node.start_row_absolute,
            end_column_absolute=node.end_column_absolute,
            end_row_absolute=node.end_row_absolute,
        ), True
    if isinstance(node, UnaryOpNode):
        operand, changed = rewrite_formula(node.operand, edit)
        if not changed:
            return node, False
        return UnaryOpNode(operator=node.operator, operand=operand), True
    if isinstance(node, BinaryOpNode):
        left, left_changed = rewrite_formula(node.left, edit)
        right, right_changed = rewrite_formula(node.right, edit)
        if not (left_changed or right_changed):
            return node, False
        return BinaryOpNode(operator=node.operator, left=left, right=right), True
    if isinstance(node, FunctionCallNode):
        rewritten = [rewrite_formula(argument, edit) for argument in node.arguments]
        if not any(changed for _argument, changed in rewritten):
            return node, False
        arguments = tuple(argument for argument, _changed in rewritten)
        return FunctionCallNode(name=node.name, arguments=arguments), True
    # Literals (numbers, strings, booleans, existing error nodes) are inert.
    return node, False
