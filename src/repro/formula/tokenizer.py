"""Tokenizer for spreadsheet formulae."""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import FormulaSyntaxError


class TokenType(Enum):
    """Lexical categories produced by :func:`tokenize`."""

    NUMBER = auto()
    STRING = auto()
    BOOLEAN = auto()
    CELL = auto()          # e.g. B2, $C$10
    RANGE = auto()         # e.g. B2:C10
    ERROR = auto()         # e.g. #REF!, #DIV/0!, #N/A
    IDENTIFIER = auto()    # function names
    OPERATOR = auto()      # + - * / ^ % & = <> < > <= >=
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()
    END = auto()


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token with its source text."""

    type: TokenType
    text: str
    position: int


_TOKEN_SPEC = [
    ("WHITESPACE", r"[ \t\r\n]+"),
    ("RANGE", r"\$?[A-Za-z]{1,7}\$?[0-9]+\s*:\s*\$?[A-Za-z]{1,7}\$?[0-9]+"),
    ("NUMBER", r"(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?"),
    ("STRING", r'"(?:[^"]|"")*"'),
    ("ERROR", r"#[A-Za-z][A-Za-z0-9/]*[!?]?"),
    ("CELL", r"\$?[A-Za-z]{1,7}\$?[0-9]+"),
    ("IDENTIFIER", r"[A-Za-z_][A-Za-z0-9_\.]*"),
    ("OPERATOR", r"<=|>=|<>|[+\-*/^&%=<>]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r"[,;]"),
]

_MASTER_PATTERN = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_BOOLEAN_LITERALS = {"TRUE", "FALSE"}


def tokenize(formula: str) -> list[Token]:
    """Tokenize a formula body (text after the leading ``=``).

    Raises :class:`FormulaSyntaxError` on unexpected characters.
    """
    tokens: list[Token] = []
    position = 0
    length = len(formula)
    while position < length:
        match = _MASTER_PATTERN.match(formula, position)
        if match is None:
            raise FormulaSyntaxError(
                f"unexpected character {formula[position]!r} at offset {position} in {formula!r}"
            )
        kind = match.lastgroup
        text = match.group()
        if kind == "WHITESPACE":
            position = match.end()
            continue
        if kind == "IDENTIFIER" and text.upper() in _BOOLEAN_LITERALS:
            tokens.append(Token(TokenType.BOOLEAN, text.upper(), position))
        elif kind == "RANGE":
            tokens.append(Token(TokenType.RANGE, text.replace(" ", ""), position))
        else:
            tokens.append(Token(TokenType[kind], text, position))
        position = match.end()
    tokens.append(Token(TokenType.END, "", length))
    return tokens
