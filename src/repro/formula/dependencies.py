"""Formula dependency graph (Section VI, Formula Evaluation).

The graph maps each formula cell to the cells it reads.  When a cell is
updated, the engine asks the graph for the transitive set of dependents in a
topological order and re-evaluates them.  Range dependencies are kept as
rectangles and matched by containment, so ``SUM(A1:A1000)`` costs one edge,
not a thousand.

Recompute architecture
----------------------
Finding the formulas that read a changed cell is the hot operation: it runs
once per BFS node on every edit.  Range precedents are therefore held in a
*spatial interval index* instead of being scanned linearly:

* Ranges spanning at most :data:`WIDE_COLUMN_SPAN` columns are bucketed per
  spanned column (*column stripes*).  A lookup for a changed cell touches
  only the bucket of the cell's column.
* Wider ranges (whole-row style references) share a single *wide* bucket and
  are filtered by column span after row stabbing.

Each bucket keeps a centered interval tree over the row spans of its
ranges.  Maintenance is *incremental*: registering or unregistering a
single formula inserts into / removes from the already-built tree in
O(log n) (``stats.incremental_inserts`` / ``stats.incremental_removes``;
each mutation absorbed by a built tree counts one ``rebuilds_avoided``)
instead of invalidating the bucket, so a steady stream of formula edits
performs **zero** lazy rebuilds.  A full rebuild survives only as a
thresholded fallback: heavy churn on one bucket (more mutations than
:data:`REBUILD_CHURN_FACTOR` times its size), or an insert whose descent
runs ~3x deeper than a balanced tree (a monotone span sequence growing a
spine), re-marks it stale so the next stab rebuilds a balanced tree,
bounding the degradation incremental insertion can cause.  ``direct_dependents`` costs O(log n + matches)
rather than a scan of every registered formula.
:attr:`DependencyGraph.stats` counts interval entries probed, which tests
use to assert sub-linear behaviour; setting
:attr:`DependencyGraph.use_range_index` to ``False`` restores the legacy
full-scan lookup for benchmarking.

``register`` accepts either formula source text or an already-parsed
:class:`~repro.formula.ast_nodes.FormulaNode`, so the engine can parse each
formula exactly once and share the AST between dependency extraction and
evaluation.  ``recompute_order`` extends ``dependents_of`` for batched
edits: it returns one topological order covering the dirty formula cells
themselves plus every transitive dependent of the dirty set.

Interval-index contract
-----------------------
The index answers exactly one question — *which formula cells read
coordinate (row, column)?* — and maintains these invariants:

* Every registered range appears in one bucket per spanned column (or the
  single wide bucket when it spans more than :data:`WIDE_COLUMN_SPAN`
  columns), keyed by the formula cell that owns it.
* A bucket's interval tree tracks its entries *incrementally*: a register
  inserts into the built tree, an unregister removes from it, both in
  O(log n), and the tree answers stabs correctly throughout.  A bucket is
  marked *stale* (rebuilt lazily on the next stab) only when no tree is
  built yet, when churn exceeds the rebuild threshold, or when a
  structural re-key could not splice the old tree across.  Buckets never
  share trees.
* Lookup results are exact, not conservative: ``direct_dependents`` agrees
  with the legacy linear scan (``use_range_index = False``) on every input.

Structural-edit rewrite hook
----------------------------
:meth:`DependencyGraph.apply_structural_edit` keeps the graph live across
row/column inserts and deletes.  Given a
:class:`~repro.formula.rewrite.StructuralEdit` it re-keys every registration
in place: formula-cell keys are shifted through the edit (registrations on
deleted lines are dropped), precedent cells and range spans are shifted with
the same mapping functions the AST rewriter uses (fully deleted precedents
are removed — mirroring the reference collapsing to ``#REF!``), and the
column-stripe buckets are rebuilt around the new spans.  Invalidation is
*incremental*: a stripe whose entries are unchanged by the edit keeps its
already-built interval tree (counted by ``stats.stripes_reused``), and a
stripe the edit merely *translated* — a column edit moving whole stripes
sideways, or a row edit shifting every span in a stripe by one uniform
delta — gets its built tree spliced across in O(n) with no re-sorting
(``stats.stripes_shifted``) instead of being rebuilt, so an edit near the
bottom of the sheet does not discard index work for untouched columns.
The returned
:class:`StructuralRewrite` reports which formulas' precedents changed, so
the engine can rewrite exactly those cells' formula text and seed one
topological recompute.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import CircularDependencyError
from repro.formula.ast_nodes import FormulaNode
from repro.formula.evaluator import extract_references
from repro.formula.rewrite import StructuralEdit
from repro.grid.address import CellAddress
from repro.grid.range import RangeRef

#: Ranges spanning more columns than this go to the shared wide bucket
#: instead of one entry per column stripe.
WIDE_COLUMN_SPAN = 64

#: Bucket key for ranges too wide for per-column stripes.
_WIDE_BUCKET = None

#: A bucket whose built tree has absorbed more than this many incremental
#: mutations per current entry falls back to one full rebuild on its next
#: stab.  Incremental inserts extend the tree without rebalancing (and
#: removals leave empty tombstone nodes), so unbounded churn would slowly
#: degrade stab cost; the threshold keeps the tree within a constant factor
#: of balanced while still making steady-state maintenance rebuild-free.
REBUILD_CHURN_FACTOR = 2

#: Churn floor so tiny buckets are not rebuilt after a handful of edits.
REBUILD_CHURN_MIN = 64


@dataclass
class DependencyGraphStats:
    """Instrumentation counters for the range index (exposed for tests)."""

    lookups: int = 0             # direct_dependents calls
    range_probes: int = 0        # interval entries examined while stabbing
    index_rebuilds: int = 0      # lazy interval-tree rebuilds
    stripes_reused: int = 0      # built trees carried across a structural edit
    stripes_shifted: int = 0     # built trees spliced to a translated stripe
    incremental_inserts: int = 0  # spans inserted into a built tree (O(log n))
    incremental_removes: int = 0  # spans removed from a built tree (O(log n))
    rebuilds_avoided: int = 0    # bucket mutations absorbed without invalidating

    def reset(self) -> None:
        self.lookups = 0
        self.range_probes = 0
        self.index_rebuilds = 0
        self.stripes_reused = 0
        self.stripes_shifted = 0
        self.incremental_inserts = 0
        self.incremental_removes = 0
        self.rebuilds_avoided = 0


class _IntervalTree:
    """Centered interval tree over inclusive [top, bottom] row spans.

    Every interval stored at a node contains the node's center row, kept in
    two orders: ascending by top (for stabs left of center) and descending
    by bottom (for stabs right of center).  A stab visits O(log n) nodes and
    examines only entries that match plus one terminator per node.

    The bulk constructor builds a balanced tree; :meth:`insert` and
    :meth:`remove` then maintain it incrementally.  Node centers are
    immutable, so the descent an interval takes is deterministic — a
    removal always finds its entry at the node the insert (or the builder)
    placed it.  Removal may leave a node's entry lists empty; such
    tombstone nodes answer stabs correctly (nothing matches) and are
    compacted away by the bucket's thresholded full rebuild.
    """

    __slots__ = ("center", "left", "right", "by_top", "by_bottom")

    def __init__(self, entries: Sequence[tuple[int, int, object]]) -> None:
        # entries: (top, bottom, payload); callers guarantee non-empty.
        endpoints = sorted(top for top, _bottom, _payload in entries)
        self.center = endpoints[len(endpoints) // 2]
        here: list[tuple[int, int, object]] = []
        lower: list[tuple[int, int, object]] = []
        upper: list[tuple[int, int, object]] = []
        for entry in entries:
            top, bottom, _payload = entry
            if bottom < self.center:
                lower.append(entry)
            elif top > self.center:
                upper.append(entry)
            else:
                here.append(entry)
        self.by_top = sorted(here, key=lambda entry: entry[0])
        self.by_bottom = sorted(here, key=lambda entry: -entry[1])
        self.left = _IntervalTree(lower) if lower else None
        self.right = _IntervalTree(upper) if upper else None

    def stab(self, row: int, out: list, stats: DependencyGraphStats) -> None:
        """Append the payloads of all intervals containing ``row`` to ``out``."""
        node: _IntervalTree | None = self
        while node is not None:
            if row < node.center:
                for top, _bottom, payload in node.by_top:
                    stats.range_probes += 1
                    if top > row:
                        break
                    out.append(payload)
                node = node.left
            elif row > node.center:
                for _top, bottom, payload in node.by_bottom:
                    stats.range_probes += 1
                    if bottom < row:
                        break
                    out.append(payload)
                node = node.right
            else:
                stats.range_probes += len(node.by_top)
                out.extend(payload for _top, _bottom, payload in node.by_top)
                return

    def insert(self, top: int, bottom: int, payload: object) -> int:
        """Insert one interval without rebuilding; returns the descent depth.

        Descends by the centered-tree rule (entirely-below goes left,
        entirely-above goes right, containing-the-center stays here) and
        splices the entry into the node's two sorted orders; a descent off
        the edge of the tree grows a new leaf.  Node centers are fixed at
        creation, so adversarial (e.g. monotone) span sequences can grow a
        spine instead of a balanced tree — the returned depth lets the
        bucket detect that and schedule a compacting rebuild.
        """
        depth = 1
        node = self
        while True:
            if bottom < node.center:
                if node.left is None:
                    node.left = _IntervalTree(((top, bottom, payload),))
                    return depth + 1
                node = node.left
            elif top > node.center:
                if node.right is None:
                    node.right = _IntervalTree(((top, bottom, payload),))
                    return depth + 1
                node = node.right
            else:
                entry = (top, bottom, payload)
                insort(node.by_top, entry, key=lambda item: item[0])
                insort(node.by_bottom, entry, key=lambda item: -item[1])
                return depth
            depth += 1

    def remove(self, top: int, bottom: int, payload: object) -> bool:
        """Remove one matching interval in O(log n + entries at its node).

        The descent is deterministic (centers never change), so the entry
        is found at exactly the node that holds it.  Returns ``False`` when
        no such entry exists — the caller falls back to a full rebuild.
        """
        entry = (top, bottom, payload)
        node: _IntervalTree | None = self
        while node is not None:
            if bottom < node.center:
                node = node.left
            elif top > node.center:
                node = node.right
            else:
                try:
                    node.by_top.remove(entry)
                    node.by_bottom.remove(entry)
                except ValueError:
                    return False
                return True
        return False

    def translate(self, row_delta: int, mapper) -> "_IntervalTree":
        """A structurally identical tree, row spans shifted by ``row_delta``
        and every payload passed through ``mapper``.

        Valid only when the edit moved *every* span in the bucket by the
        same row delta (a column edit never touches row spans at all, so it
        translates with delta 0): the centers shift with the spans and the
        by-top/by-bottom orders carry over verbatim, so the copy costs O(n)
        with no sorting.
        """
        clone = _IntervalTree.__new__(_IntervalTree)
        clone.center = self.center + row_delta
        clone.by_top = [
            (top + row_delta, bottom + row_delta, mapper(payload))
            for top, bottom, payload in self.by_top
        ]
        clone.by_bottom = [
            (top + row_delta, bottom + row_delta, mapper(payload))
            for top, bottom, payload in self.by_bottom
        ]
        clone.left = self.left.translate(row_delta, mapper) if self.left is not None else None
        clone.right = self.right.translate(row_delta, mapper) if self.right is not None else None
        return clone


class _StripeBucket:
    """The ranges assigned to one column stripe (or the wide bucket).

    Entries are kept per formula cell so unregister is O(ranges of that
    formula).  A built interval tree is maintained *incrementally*: adds
    insert into it and removes delete from it in O(log n), so single
    (un)registrations never invalidate the bucket.  The tree is rebuilt
    lazily only when none is built yet, when accumulated churn exceeds
    ``REBUILD_CHURN_FACTOR`` times the bucket's current size, or when an
    insert descends past ``_depth_limit`` (incremental maintenance does
    not rebalance, so heavy churn — or an adversarial monotone span
    sequence growing a spine — eventually warrants one compacting
    rebuild).
    """

    __slots__ = ("entries", "tree", "stale", "size", "churn")

    def __init__(self) -> None:
        # formula cell -> list of (top, bottom, left, right) spans
        self.entries: dict[CellAddress, list[tuple[int, int, int, int]]] = {}
        self.tree: _IntervalTree | None = None
        self.stale = False
        #: Total spans across all entries (the tree's live entry count).
        self.size = 0
        #: Incremental mutations absorbed since the tree was last (re)built.
        self.churn = 0

    def add(self, address: CellAddress, region: RangeRef,
            stats: DependencyGraphStats) -> None:
        self.entries.setdefault(address, []).append(
            (region.top, region.bottom, region.left, region.right)
        )
        self.size += 1
        if self.tree is not None and not self.stale:
            depth = self.tree.insert(region.top, region.bottom,
                                     (region.left, region.right, address))
            stats.incremental_inserts += 1
            self._absorb_churn(1)
            if depth > self._depth_limit():
                # Monotone span sequences grow a spine the churn counter
                # never notices (churn and size grow in lockstep); the
                # depth of the insert descent catches it directly.  A
                # deep tree also keeps stabs O(depth) and would overflow
                # the recursive structural-edit splice.
                self.stale = True
            if not self.stale:
                stats.rebuilds_avoided += 1
        else:
            self.stale = True

    def remove(self, address: CellAddress, stats: DependencyGraphStats) -> bool:
        """Drop every span of ``address``; returns True when the bucket empties."""
        spans = self.entries.pop(address, None)
        if spans is not None:
            self.size -= len(spans)
            if self.tree is not None and not self.stale:
                for top, bottom, left, right in spans:
                    if not self.tree.remove(top, bottom, (left, right, address)):
                        # The tree and the entry map disagree; rebuild.
                        self.stale = True
                        break
                    stats.incremental_removes += 1
                else:
                    self._absorb_churn(len(spans))
                    if not self.stale:
                        stats.rebuilds_avoided += 1
            else:
                self.stale = True
        return not self.entries

    def _absorb_churn(self, mutations: int) -> None:
        """Count incremental mutations; fall back to a rebuild past the cap."""
        self.churn += mutations
        if self.churn > max(REBUILD_CHURN_MIN, REBUILD_CHURN_FACTOR * self.size):
            self.stale = True

    def _depth_limit(self) -> int:
        """Deepest acceptable insert descent: ~3x the balanced depth.

        A fresh build of ``size`` entries has depth about log2(size); past
        three times that (plus slack for tiny buckets) the incremental
        inserts have degenerated the shape and one compacting rebuild is
        cheaper than serving O(depth) stabs.
        """
        return 3 * max(self.size.bit_length(), 2) + 4

    def stab(self, row: int, column: int, out: set[CellAddress],
             stats: DependencyGraphStats) -> None:
        """Add the formula cells whose spans contain (row, column) to ``out``."""
        if self.tree is None or self.stale:
            flat = [
                (top, bottom, (left, right, address))
                for address, spans in self.entries.items()
                for top, bottom, left, right in spans
            ]
            self.tree = _IntervalTree(flat) if flat else None
            self.stale = False
            self.size = len(flat)
            self.churn = 0
            stats.index_rebuilds += 1
        if self.tree is None:
            return
        hits: list[tuple[int, int, CellAddress]] = []
        self.tree.stab(row, hits, stats)
        for left, right, address in hits:
            if left <= column <= right:
                out.add(address)


@dataclass
class StructuralRewrite:
    """What :meth:`DependencyGraph.apply_structural_edit` did to the graph.

    ``changed`` holds the *post-edit* addresses of formulas whose precedent
    set shifted, expanded, contracted, or lost a referent — exactly the
    formulas whose source text needs rewriting and whose values need one
    topological recompute.
    """

    changed: set[CellAddress] = field(default_factory=set)


class DependencyGraph:
    """Tracks which formula cells depend on which precedent cells/ranges."""

    def __init__(self) -> None:
        # formula cell -> (precedent cells, precedent ranges)
        self._precedents: dict[CellAddress, tuple[frozenset[CellAddress], tuple[RangeRef, ...]]] = {}
        # precedent cell -> set of formula cells reading it directly
        self._cell_dependents: dict[CellAddress, set[CellAddress]] = {}
        # column stripe (or _WIDE_BUCKET) -> ranges whose spans cross it
        self._range_buckets: dict[int | None, _StripeBucket] = {}
        #: Flip to ``False`` to fall back to the legacy linear scan of every
        #: registered formula (kept for benchmarking the index speedup).
        self.use_range_index = True
        #: Fired with the address whenever a *registered* formula leaves the
        #: graph (re-registration, clearing, overwriting).  The aggregate
        #: store hangs its refcount lifecycle here: the graph is the single
        #: source of truth for which formulas still read which ranges, so
        #: unregistration is exactly when a shared state loses a subscriber.
        self.on_unregister: Callable[[CellAddress], None] | None = None
        self.stats = DependencyGraphStats()

    # ------------------------------------------------------------------ #
    def register(self, address: CellAddress, formula: str | FormulaNode) -> None:
        """Register (or replace) the formula at ``address``.

        ``formula`` may be source text or a pre-parsed AST; passing the AST
        lets the engine parse each formula exactly once.
        """
        self.unregister(address)
        cells, ranges = extract_references(formula)
        self._install(address, frozenset(cells), tuple(ranges))

    def register_ranges(self, address: CellAddress,
                        ranges: Iterable[RangeRef]) -> None:
        """Register ``address`` as a pure range reader (no formula text).

        Used by live query views: the view's sentinel anchor depends on its
        source regions, so edits anywhere inside them reach the view through
        the same interval-indexed lookup as any formula, without a formula
        ever existing at the anchor.
        """
        self.unregister(address)
        self._install(address, frozenset(), tuple(ranges))

    def _install(
        self,
        address: CellAddress,
        cells: frozenset[CellAddress],
        ranges: tuple[RangeRef, ...],
    ) -> None:
        self._precedents[address] = (cells, ranges)
        for precedent in cells:
            self._cell_dependents.setdefault(precedent, set()).add(address)
        for region in ranges:
            for key in self._bucket_keys(region):
                bucket = self._range_buckets.get(key)
                if bucket is None:
                    bucket = self._range_buckets[key] = _StripeBucket()
                bucket.add(address, region, self.stats)

    def snapshot_registration(
        self, address: CellAddress
    ) -> tuple[frozenset[CellAddress], tuple[RangeRef, ...]] | None:
        """Snapshot of ``address``'s registration (``None`` when absent).

        Unlike :meth:`precedents_of`, distinguishes an unregistered cell
        from a registered formula with no references.  Pair with
        :meth:`restore_registration` to roll back the registrations of a
        failed batch.
        """
        return self._precedents.get(address)

    def restore_registration(
        self,
        address: CellAddress,
        snapshot: tuple[frozenset[CellAddress], tuple[RangeRef, ...]] | None,
    ) -> None:
        """Reset ``address``'s registration to a captured snapshot."""
        self.unregister(address)
        if snapshot is not None:
            cells, ranges = snapshot
            self._install(address, cells, ranges)

    def unregister(self, address: CellAddress) -> None:
        """Remove the formula at ``address`` from the graph (no-op if absent)."""
        entry = self._precedents.pop(address, None)
        if entry is None:
            return
        cells, ranges = entry
        for precedent in cells:
            dependents = self._cell_dependents.get(precedent)
            if dependents is not None:
                dependents.discard(address)
                if not dependents:
                    del self._cell_dependents[precedent]
        seen_keys: set[int | None] = set()
        for region in ranges:
            for key in self._bucket_keys(region):
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                bucket = self._range_buckets.get(key)
                if bucket is not None and bucket.remove(address, self.stats):
                    del self._range_buckets[key]
        if self.on_unregister is not None:
            self.on_unregister(address)

    @staticmethod
    def _bucket_keys(region: RangeRef) -> Iterable[int | None]:
        if region.columns > WIDE_COLUMN_SPAN:
            return (_WIDE_BUCKET,)
        return range(region.left, region.right + 1)

    # ------------------------------------------------------------------ #
    def apply_structural_edit(self, edit: StructuralEdit) -> StructuralRewrite:
        """Re-key every registration across a row/column insert or delete.

        Formula-cell keys, precedent cells, and precedent range spans are
        all shifted through ``edit`` with the same mapping the AST rewriter
        applies to formula text, so the graph stays consistent with the
        rewritten formulas without re-parsing a single one.  Registrations
        whose own cell was deleted are dropped; precedents that were fully
        deleted are removed from their formula's registration (the formula
        itself survives — its reference now reads ``#REF!``).

        Stripe invalidation is incremental: buckets whose entries come out
        of the edit unchanged keep their already-built interval trees
        (``stats.stripes_reused`` counts them); only genuinely affected
        stripes are rebuilt on their next stab.
        """
        changed: set[CellAddress] = set()
        new_precedents: dict[
            CellAddress, tuple[frozenset[CellAddress], tuple[RangeRef, ...]]
        ] = {}
        for address, (cells, ranges) in self._precedents.items():
            new_address = edit.map_address(address)
            if new_address is None:
                continue  # the formula's own cell was deleted
            new_cells = frozenset(
                mapped for mapped in (edit.map_address(cell) for cell in cells)
                if mapped is not None
            )
            new_ranges = tuple(
                mapped for mapped in (edit.map_range(region) for region in ranges)
                if mapped is not None
            )
            if new_cells != cells or new_ranges != ranges:
                changed.add(new_address)
            new_precedents[new_address] = (new_cells, new_ranges)
        self._precedents = new_precedents

        cell_dependents: dict[CellAddress, set[CellAddress]] = {}
        for address, (cells, _ranges) in new_precedents.items():
            for precedent in cells:
                cell_dependents.setdefault(precedent, set()).add(address)
        self._cell_dependents = cell_dependents

        new_buckets: dict[int | None, _StripeBucket] = {}
        for address, (_cells, ranges) in new_precedents.items():
            for region in ranges:
                for key in self._bucket_keys(region):
                    bucket = new_buckets.get(key)
                    if bucket is None:
                        bucket = new_buckets[key] = _StripeBucket()
                    bucket.add(address, region, self.stats)
        for key, bucket in new_buckets.items():
            old = self._range_buckets.get(key)
            if old is not None and not old.stale and old.tree is not None \
                    and old.entries == bucket.entries:
                new_buckets[key] = old
                self.stats.stripes_reused += 1
                continue
            self._try_splice_reuse(edit, key, bucket)
        self._range_buckets = new_buckets
        return StructuralRewrite(changed=changed)

    def _try_splice_reuse(self, edit: StructuralEdit, key: int | None,
                          bucket: _StripeBucket) -> None:
        """Splice a built interval tree across a structural edit.

        Two translations are exact and cost O(n) with no re-sorting:

        * A **column** insert/delete never changes row spans, so the tree of
          a stripe strictly right of the edit is structurally valid at its
          shifted key — only the payloads (column spans and formula-cell
          addresses) need translating.
        * A **row** insert/delete that moved *every* span in a stripe by the
          same delta (the whole stripe sits below the edited lines — or
          above them, when only the formula cells moved) preserves the
          tree's shape exactly: centers and spans translate by the delta and
          payload addresses re-map.  A span that straddles the edit
          (expanding or contracting) breaks the uniformity and disqualifies
          the stripe.

        The reuse is exact, not heuristic: it applies only when the old
        bucket's entries, mapped through the edit, are identical to the
        freshly rebuilt bucket's entries (an entry lost to the edit, or a
        span that did not survive intact, disqualifies the stripe).
        """
        if edit.axis == "column":
            if key is _WIDE_BUCKET:
                return
            if edit.kind == "insert":
                # New stripes at or left of the insert kept their key
                # (handled by the identity check); inserted columns have no
                # old counterpart.
                if key <= edit.line + edit.count:
                    return
                old_key = key - edit.count
            else:
                if key < edit.line:
                    return
                old_key = key + edit.count
        else:
            # Row edits never move ranges across column stripes.
            old_key = key
        old = self._range_buckets.get(old_key)
        if old is None or old.stale or old.tree is None:
            return
        delta = 0
        remapped: dict[CellAddress, list[tuple[int, int, int, int]]] = {}
        first_span = True
        for address, spans in old.entries.items():
            moved = edit.map_address(address)
            if moved is None:
                return  # a formula died in the edit; payloads would be stale
            moved_spans: list[tuple[int, int, int, int]] = []
            for top, bottom, left, right in spans:
                if edit.axis == "column":
                    span = edit.map_span(left, right)
                    if span is None:
                        return
                    moved_spans.append((top, bottom, span[0], span[1]))
                else:
                    span = edit.map_span(top, bottom)
                    if span is None or span[1] - span[0] != bottom - top:
                        return  # deleted or straddling: not a pure translate
                    if first_span:
                        delta = span[0] - top
                        first_span = False
                    elif span[0] - top != delta:
                        return  # mixed deltas: the tree cannot translate
                    moved_spans.append((span[0], span[1], left, right))
            remapped[moved] = moved_spans
        if remapped != bucket.entries:
            return

        if edit.axis == "column":
            def map_payload(payload: tuple[int, int, CellAddress]):
                left, right, address = payload
                span = edit.map_span(left, right)
                moved = edit.map_address(address)
                assert span is not None and moved is not None  # verified above
                return (span[0], span[1], moved)
        else:
            def map_payload(payload: tuple[int, int, CellAddress]):
                left, right, address = payload
                moved = edit.map_address(address)
                assert moved is not None  # verified above
                return (left, right, moved)

        bucket.tree = old.tree.translate(delta, map_payload)
        bucket.stale = False
        bucket.size = old.size
        bucket.churn = old.churn  # tombstones carry over with the tree
        self.stats.stripes_shifted += 1

    def formula_cells(self) -> list[CellAddress]:
        """All registered formula cells."""
        return list(self._precedents)

    def precedents_of(self, address: CellAddress) -> tuple[frozenset[CellAddress], tuple[RangeRef, ...]]:
        """The direct precedents (cells, ranges) of a formula cell."""
        return self._precedents.get(address, (frozenset(), ()))

    # ------------------------------------------------------------------ #
    def direct_dependents(self, changed: CellAddress) -> set[CellAddress]:
        """Formula cells that directly read ``changed`` (via a cell or range ref)."""
        self.stats.lookups += 1
        dependents = set(self._cell_dependents.get(changed, ()))
        if self.use_range_index:
            bucket = self._range_buckets.get(changed.column)
            if bucket is not None:
                bucket.stab(changed.row, changed.column, dependents, self.stats)
            wide = self._range_buckets.get(_WIDE_BUCKET)
            if wide is not None:
                wide.stab(changed.row, changed.column, dependents, self.stats)
            return dependents
        # Legacy path: scan every registered formula (benchmark baseline).
        for formula_cell, (_cells, ranges) in self._precedents.items():
            if formula_cell in dependents:
                continue
            for region in ranges:
                self.stats.range_probes += 1
                if region.contains(changed):
                    dependents.add(formula_cell)
                    break
        return dependents

    def dependents_of(self, changed: CellAddress | Iterable[CellAddress]) -> list[CellAddress]:
        """Transitive dependents of the changed cell(s), in evaluation order.

        The returned order is a topological order of the affected subgraph:
        a formula appears after every affected formula it reads.  Raises
        :class:`CircularDependencyError` when the affected subgraph contains
        a cycle.
        """
        seeds = [changed] if isinstance(changed, CellAddress) else list(changed)
        return self._ordered_closure(seeds, include_seed_formulas=False)

    def recompute_order(self, dirty: Iterable[CellAddress]) -> list[CellAddress]:
        """Evaluation order for a batch of edits.

        Like :meth:`dependents_of`, but dirty cells that are themselves
        formulas are included in the order (they need evaluating too), so a
        batched edit runs exactly one topological pass.
        """
        return self._ordered_closure(list(dirty), include_seed_formulas=True)

    # ------------------------------------------------------------------ #
    # topological slicing (used by the async compute scheduler)
    # ------------------------------------------------------------------ #
    def affected_set(self, seeds: Iterable[CellAddress], *,
                     include_seeds: bool = True) -> set[CellAddress]:
        """The dirty slice of an edit: every formula needing re-evaluation.

        BFS over direct dependents from the seeds — no ordering, no
        full-graph sort.  With ``include_seeds`` (the default), seeds that
        are themselves registered formulas are part of the slice.  This is
        the subtree-extraction primitive behind
        :class:`~repro.compute.ComputeScheduler.mark_dirty`.
        """
        affected, _pairs = self._affected_slice(list(seeds), include_seeds)
        return affected

    def slice_edges(
        self, cells: Iterable[CellAddress]
    ) -> list[tuple[CellAddress, CellAddress]]:
        """The dependency edges internal to a subset of formula cells.

        Returns ``(precedent, dependent)`` pairs where both endpoints are in
        ``cells`` — exactly the edges a scheduler needs to order the subset,
        discovered through the interval index (one ``direct_dependents``
        stab per member), never by sorting the whole graph.
        """
        subset = set(cells)
        pairs: list[tuple[CellAddress, CellAddress]] = []
        for cell in sorted(subset):
            for dependent in self.direct_dependents(cell):
                if dependent in subset and dependent != cell:
                    pairs.append((cell, dependent))
        return pairs

    def slice_order(self, cells: Iterable[CellAddress]) -> list[CellAddress]:
        """Topological order over exactly the given cells (no expansion).

        The one-shot convenience over :meth:`slice_edges`: unlike
        :meth:`recompute_order` the subset is *not* grown to its transitive
        dependents.  (The compute scheduler consumes :meth:`slice_edges`
        directly instead, because it needs to re-prioritise and pop
        incrementally rather than fix one order up front.)  Raises
        :class:`CircularDependencyError` when the subset contains a cycle.
        """
        subset = set(cells)
        return self._topological_order(subset, self.slice_edges(subset))

    def __contains__(self, address: CellAddress) -> bool:
        return address in self._precedents

    def _affected_slice(
        self, seeds: list[CellAddress], include_seed_formulas: bool
    ) -> tuple[set[CellAddress], list[tuple[CellAddress, CellAddress]]]:
        """BFS the dependents of ``seeds``: the affected set plus the
        (reader-of, read-by) pairs discovered along the way, so callers can
        order the slice without a pairwise containment scan afterwards."""
        affected: set[CellAddress] = set()
        if include_seed_formulas:
            affected.update(seed for seed in seeds if seed in self._precedents)
        pairs: list[tuple[CellAddress, CellAddress]] = []
        visited: set[CellAddress] = set()
        frontier: deque[CellAddress] = deque(seeds)
        while frontier:
            current = frontier.popleft()
            if current in visited:
                continue
            visited.add(current)
            for dependent in self.direct_dependents(current):
                pairs.append((current, dependent))
                if dependent not in affected:
                    affected.add(dependent)
                    frontier.append(dependent)
        return affected, pairs

    def _ordered_closure(self, seeds: list[CellAddress],
                         include_seed_formulas: bool) -> list[CellAddress]:
        affected, pairs = self._affected_slice(seeds, include_seed_formulas)
        return self._topological_order(affected, pairs)

    def _topological_order(self, affected: set[CellAddress],
                           pairs: list[tuple[CellAddress, CellAddress]]) -> list[CellAddress]:
        indegree: dict[CellAddress, int] = {address: 0 for address in affected}
        edges: dict[CellAddress, list[CellAddress]] = {address: [] for address in affected}
        seen: set[tuple[CellAddress, CellAddress]] = set()
        for precedent, dependent in pairs:
            if precedent not in affected or dependent not in affected:
                continue
            if precedent == dependent or (precedent, dependent) in seen:
                continue
            seen.add((precedent, dependent))
            edges[precedent].append(dependent)
            indegree[dependent] += 1
        ready = deque(sorted((a for a, degree in indegree.items() if degree == 0),
                             key=lambda a: (a.row, a.column)))
        ordered: list[CellAddress] = []
        while ready:
            current = ready.popleft()
            ordered.append(current)
            for successor in edges[current]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(ordered) != len(affected):
            raise CircularDependencyError(
                f"circular dependency among {len(affected) - len(ordered)} formula cell(s)"
            )
        return ordered

    def detect_cycle(self) -> bool:
        """Whether the full graph currently contains a cycle."""
        try:
            self._ordered_closure(list(self._precedents), include_seed_formulas=True)
        except CircularDependencyError:
            return True
        return False

    def __len__(self) -> int:
        return len(self._precedents)
