"""Formula dependency graph (Section VI, Formula Evaluation).

The graph maps each formula cell to the cells it reads.  When a cell is
updated, the engine asks the graph for the transitive set of dependents in a
topological order and re-evaluates them.  Range dependencies are kept as
rectangles and matched by containment, so ``SUM(A1:A1000)`` costs one edge,
not a thousand.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import CircularDependencyError
from repro.formula.evaluator import extract_references
from repro.grid.address import CellAddress
from repro.grid.range import RangeRef


class DependencyGraph:
    """Tracks which formula cells depend on which precedent cells/ranges."""

    def __init__(self) -> None:
        # formula cell -> (precedent cells, precedent ranges)
        self._precedents: dict[CellAddress, tuple[frozenset[CellAddress], tuple[RangeRef, ...]]] = {}
        # precedent cell -> set of formula cells reading it directly
        self._cell_dependents: dict[CellAddress, set[CellAddress]] = {}

    # ------------------------------------------------------------------ #
    def register(self, address: CellAddress, formula: str) -> None:
        """Register (or replace) the formula at ``address``."""
        self.unregister(address)
        cells, ranges = extract_references(formula)
        cell_set = frozenset(cells)
        self._precedents[address] = (cell_set, tuple(ranges))
        for precedent in cell_set:
            self._cell_dependents.setdefault(precedent, set()).add(address)

    def unregister(self, address: CellAddress) -> None:
        """Remove the formula at ``address`` from the graph (no-op if absent)."""
        entry = self._precedents.pop(address, None)
        if entry is None:
            return
        cells, _ranges = entry
        for precedent in cells:
            dependents = self._cell_dependents.get(precedent)
            if dependents is not None:
                dependents.discard(address)
                if not dependents:
                    del self._cell_dependents[precedent]

    def formula_cells(self) -> list[CellAddress]:
        """All registered formula cells."""
        return list(self._precedents)

    def precedents_of(self, address: CellAddress) -> tuple[frozenset[CellAddress], tuple[RangeRef, ...]]:
        """The direct precedents (cells, ranges) of a formula cell."""
        return self._precedents.get(address, (frozenset(), ()))

    # ------------------------------------------------------------------ #
    def direct_dependents(self, changed: CellAddress) -> set[CellAddress]:
        """Formula cells that directly read ``changed`` (via a cell or range ref)."""
        dependents = set(self._cell_dependents.get(changed, ()))
        for formula_cell, (_cells, ranges) in self._precedents.items():
            if formula_cell in dependents:
                continue
            for region in ranges:
                if region.contains(changed):
                    dependents.add(formula_cell)
                    break
        return dependents

    def dependents_of(self, changed: CellAddress | Iterable[CellAddress]) -> list[CellAddress]:
        """Transitive dependents of the changed cell(s), in evaluation order.

        The returned order is a topological order of the affected subgraph:
        a formula appears after every affected formula it reads.  Raises
        :class:`CircularDependencyError` when the affected subgraph contains
        a cycle.
        """
        seeds = [changed] if isinstance(changed, CellAddress) else list(changed)
        affected: set[CellAddress] = set()
        frontier: deque[CellAddress] = deque(seeds)
        while frontier:
            current = frontier.popleft()
            for dependent in self.direct_dependents(current):
                if dependent not in affected:
                    affected.add(dependent)
                    frontier.append(dependent)
        return self._topological_order(affected)

    def _topological_order(self, affected: set[CellAddress]) -> list[CellAddress]:
        # Build edges restricted to the affected set: precedent -> dependent.
        indegree: dict[CellAddress, int] = {address: 0 for address in affected}
        edges: dict[CellAddress, list[CellAddress]] = {address: [] for address in affected}
        for dependent in affected:
            cells, ranges = self._precedents[dependent]
            precedent_formulas: set[CellAddress] = set()
            for other in affected:
                if other == dependent:
                    continue
                if other in cells or any(region.contains(other) for region in ranges):
                    precedent_formulas.add(other)
            for precedent in precedent_formulas:
                edges[precedent].append(dependent)
                indegree[dependent] += 1
        ready = deque(sorted((a for a, degree in indegree.items() if degree == 0),
                             key=lambda a: (a.row, a.column)))
        ordered: list[CellAddress] = []
        while ready:
            current = ready.popleft()
            ordered.append(current)
            for successor in edges[current]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(ordered) != len(affected):
            raise CircularDependencyError(
                f"circular dependency among {len(affected) - len(ordered)} formula cell(s)"
            )
        return ordered

    def detect_cycle(self) -> bool:
        """Whether the full graph currently contains a cycle."""
        try:
            self._topological_order(set(self._precedents))
        except CircularDependencyError:
            return True
        return False

    def __len__(self) -> int:
        return len(self._precedents)
