"""AST → formula-text serialization.

The inverse of :func:`repro.formula.parser.parse_formula`: render an AST back
to A1-notation source text such that re-parsing the text yields an equal AST
(``parse_formula(to_formula(node)) == node``).  The structural-edit rewriter
relies on this round-trip to persist shifted references — a rewritten formula
is serialized, stored as the cell's new source text, and primed back into the
evaluator's bounded AST cache.

Parenthesization is minimal: a child expression is wrapped only when its
binding power is too weak for the position it occupies, so ``A1+B1*2``
serializes without parentheses while ``(A1+B1)*2`` keeps them.
"""

from __future__ import annotations

from repro.formula.ast_nodes import (
    BinaryOpNode,
    BoolNode,
    CellRefNode,
    ErrorNode,
    FormulaNode,
    FunctionCallNode,
    NumberNode,
    RangeRefNode,
    StringNode,
    UnaryOpNode,
)
from repro.formula.parser import _BINARY_PRECEDENCE, _RIGHT_ASSOCIATIVE
from repro.grid.address import column_index_to_letter

#: Binding powers above every binary operator (which top out at 50): prefix
#: ``-x`` binds tighter than any binary, postfix ``x%`` tighter still, and
#: atoms (literals, references, calls) never need wrapping.
_PREFIX_PRECEDENCE = 60
_POSTFIX_PRECEDENCE = 70
_ATOM_PRECEDENCE = 100


def _precedence(node: FormulaNode) -> int:
    if isinstance(node, BinaryOpNode):
        return _BINARY_PRECEDENCE[node.operator]
    if isinstance(node, UnaryOpNode):
        return _POSTFIX_PRECEDENCE if node.operator == "%" else _PREFIX_PRECEDENCE
    return _ATOM_PRECEDENCE


def _wrap(node: FormulaNode, minimum: int, *, strict: bool = False) -> str:
    text = _serialize(node)
    precedence = _precedence(node)
    if precedence < minimum or (strict and precedence == minimum):
        return f"({text})"
    return text


def _corner(row: int, column: int, column_absolute: bool, row_absolute: bool) -> str:
    """Render one A1 corner, re-emitting its ``$`` absolute markers."""
    return (
        ("$" if column_absolute else "") + column_index_to_letter(column)
        + ("$" if row_absolute else "") + str(row)
    )


def _serialize(node: FormulaNode) -> str:
    if isinstance(node, NumberNode):
        value = node.value
        return repr(int(value)) if value.is_integer() else repr(value)
    if isinstance(node, StringNode):
        return '"' + node.value.replace('"', '""') + '"'
    if isinstance(node, BoolNode):
        return "TRUE" if node.value else "FALSE"
    if isinstance(node, CellRefNode):
        return _corner(node.address.row, node.address.column,
                       node.column_absolute, node.row_absolute)
    if isinstance(node, RangeRefNode):
        # Always emit both corners: a 1x1 range must round-trip as a range
        # reference, not collapse into a single-cell reference.
        region = node.range
        start = _corner(region.top, region.left,
                        node.start_column_absolute, node.start_row_absolute)
        end = _corner(region.bottom, region.right,
                      node.end_column_absolute, node.end_row_absolute)
        return f"{start}:{end}"
    if isinstance(node, ErrorNode):
        return node.code
    if isinstance(node, UnaryOpNode):
        if node.operator == "%":
            return _wrap(node.operand, _POSTFIX_PRECEDENCE) + "%"
        return node.operator + _wrap(node.operand, _PREFIX_PRECEDENCE)
    if isinstance(node, BinaryOpNode):
        precedence = _BINARY_PRECEDENCE[node.operator]
        right_associative = node.operator in _RIGHT_ASSOCIATIVE
        left = _wrap(node.left, precedence, strict=right_associative)
        right = _wrap(node.right, precedence, strict=not right_associative)
        return f"{left}{node.operator}{right}"
    if isinstance(node, FunctionCallNode):
        arguments = ",".join(_serialize(argument) for argument in node.arguments)
        return f"{node.name}({arguments})"
    raise TypeError(f"cannot serialize AST node {type(node).__name__}")


def to_formula(node: FormulaNode) -> str:
    """Render an AST as formula source text (without the leading ``=``).

    >>> from repro.formula.parser import parse_formula
    >>> to_formula(parse_formula("SUM(B2:C10) + D2"))
    'SUM(B2:C10)+D2'
    >>> parse_formula(to_formula(parse_formula("(A1+B1)*2"))) == parse_formula("(A1+B1)*2")
    True
    """
    return _serialize(node)
