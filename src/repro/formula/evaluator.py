"""Formula evaluation against any cell provider.

The evaluator is decoupled from storage: it pulls cell values through a
*cell provider* callable ``(row, column) -> CellValue`` so the same code
evaluates formulae against the in-memory :class:`~repro.grid.sheet.Sheet`,
the LRU cell cache of the execution engine, or a raw data model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import FormulaEvaluationError, FormulaSyntaxError
from repro.formula import columnar
from repro.formula.aggregates import (
    DECOMPOSABLE_AGGREGATES,
    combine_aggregate,
)
from repro.formula.ast_nodes import (
    BinaryOpNode,
    BoolNode,
    CellRefNode,
    ErrorNode,
    FormulaNode,
    FunctionCallNode,
    NumberNode,
    RangeRefNode,
    StringNode,
    UnaryOpNode,
)
from repro.formula.functions import FUNCTION_REGISTRY, RangeValue, to_number, to_text
from repro.formula.parser import parse_formula
from repro.grid.address import CellAddress
from repro.grid.cell import Cell, CellValue
from repro.grid.range import RangeRef

CellProvider = Callable[[int, int], CellValue]
RangeProvider = Callable[[RangeRef], dict]
#: Dense row-major slab of a region's values (``None`` = blank cell), the
#: bulk-read contract behind the vectorized columnar build path.
SlabProvider = Callable[[RangeRef], list]

#: Ranges larger than this raise instead of materialising (safety valve for
#: accidental whole-column references on huge sheets).
MAX_RANGE_CELLS = 10_000_000

#: Default bound on the number of distinct formula ASTs kept parsed.
DEFAULT_PARSE_CACHE_CAPACITY = 10_000


@dataclass
class ParseCacheStats:
    """A snapshot of the evaluator's AST-cache behaviour.

    ``hits``/``misses`` count :meth:`Evaluator.parse` lookups; ``primes``
    counts ASTs seeded directly by :meth:`Evaluator.prime` (a prime of an
    already-cached formula refreshes its recency and counts as a hit).
    """

    hits: int
    misses: int
    primes: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of ``parse`` calls served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Evaluator:
    """Evaluates formula ASTs by pulling referenced cells from a provider.

    ``range_provider`` is optional: when given, rectangular range references
    are materialised with a single ``getCells(range)`` call (the storage
    engine's bulk access path) instead of one cell probe per coordinate,
    which is how the DataSpread engine actually evaluates SUM/VLOOKUP-style
    formulae over a data model.  The provider may return either the classic
    ``{CellAddress: Cell}`` mapping or the allocation-free fast-path form
    ``{(row, column): value}`` (see ``HybridDataModel.get_values``).

    Parsed ASTs are cached with LRU eviction bounded by
    ``parse_cache_capacity`` so millions of distinct formulas cannot grow
    the cache without limit.

    ``aggregate_store`` is optional: when given (the DataSpread engine
    passes its :class:`~repro.formula.aggregates.AggregateStore`) and
    :attr:`aggregate_cell` names the formula cell being evaluated,
    decomposable aggregate calls whose arguments are all range references
    are served from the store's running state in O(1) instead of
    materialising the range, (re)building state from one bulk read when
    missing — the delta-maintained fast path for ``SUM(A1:A100000)``-style
    formulas.
    """

    def __init__(self, cell_provider: CellProvider,
                 range_provider: RangeProvider | None = None,
                 *, parse_cache_capacity: int = DEFAULT_PARSE_CACHE_CAPACITY,
                 aggregate_store=None,
                 slab_provider: SlabProvider | None = None) -> None:
        if parse_cache_capacity < 1:
            raise ValueError("parse cache capacity must be >= 1")
        self._provider = cell_provider
        self._range_provider = range_provider
        self._aggregate_store = aggregate_store
        #: Optional dense bulk reader; when present (and the store allows
        #: it), cold aggregate state is built by the vectorized columnar
        #: path over one slab instead of the scalar fold over a
        #: materialised RangeValue.
        self._slab_provider = slab_provider
        #: The formula cell currently being evaluated on behalf of the
        #: engine; keys the aggregate store's running state.  ``None``
        #: disables the decomposable fast path entirely.
        self.aggregate_cell: CellAddress | None = None
        self._parse_cache: OrderedDict[str, FormulaNode] = OrderedDict()
        self._parse_cache_capacity = parse_cache_capacity
        self._parse_hits = 0
        self._parse_misses = 0
        self._parse_primes = 0

    @property
    def parse_cache_size(self) -> int:
        """Number of distinct formulas currently held parsed."""
        return len(self._parse_cache)

    def parse_cache_stats(self) -> ParseCacheStats:
        """Hit/miss/prime counters plus current size and capacity."""
        return ParseCacheStats(
            hits=self._parse_hits,
            misses=self._parse_misses,
            primes=self._parse_primes,
            size=len(self._parse_cache),
            capacity=self._parse_cache_capacity,
        )

    def reset_parse_cache_stats(self) -> None:
        """Zero the hit/miss/prime counters (the cached ASTs are kept)."""
        self._parse_hits = 0
        self._parse_misses = 0
        self._parse_primes = 0

    # ------------------------------------------------------------------ #
    def parse(self, formula: str) -> FormulaNode:
        """Parse a formula body through the bounded LRU AST cache."""
        node = self._parse_cache.get(formula)
        if node is not None:
            self._parse_hits += 1
            self._parse_cache.move_to_end(formula)
            return node
        self._parse_misses += 1
        node = parse_formula(formula)
        self._parse_cache[formula] = node
        self._evict_over_capacity()
        return node

    def prime(self, formula: str, node: FormulaNode) -> None:
        """Seed the AST cache with an already-parsed formula.

        Used by the structural-edit rewriter: a rewritten AST is serialized
        back to text, and priming the cache lets the new text evaluate
        without a round-trip through the parser.  The caller guarantees
        ``parse_formula(formula) == node``, so priming a formula that is
        already cached only refreshes its recency — the cached AST object
        is kept, preserving subtree sharing with every holder of it.
        """
        if formula in self._parse_cache:
            self._parse_cache.move_to_end(formula)
            self._parse_hits += 1
            return
        self._parse_cache[formula] = node
        self._parse_primes += 1
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        while len(self._parse_cache) > self._parse_cache_capacity:
            self._parse_cache.popitem(last=False)

    def evaluate(self, formula: str) -> CellValue:
        """Parse (with caching) and evaluate a formula body."""
        return self.evaluate_node(self.parse(formula))

    def evaluate_node(self, node: FormulaNode) -> CellValue:
        """Evaluate an already-parsed AST to a scalar value."""
        result = self._evaluate(node)
        if isinstance(result, RangeValue):
            # A bare range in scalar context collapses to its first cell,
            # mirroring how spreadsheets resolve implicit intersection.
            return result.values[0][0] if result.values else None
        return result

    # ------------------------------------------------------------------ #
    def _evaluate(self, node: FormulaNode) -> CellValue | RangeValue:
        if isinstance(node, NumberNode):
            return node.value if not node.value.is_integer() else int(node.value)
        if isinstance(node, StringNode):
            return node.value
        if isinstance(node, BoolNode):
            return node.value
        if isinstance(node, CellRefNode):
            return self._provider(node.address.row, node.address.column)
        if isinstance(node, RangeRefNode):
            return self._materialize_range(node.range)
        if isinstance(node, ErrorNode):
            raise FormulaEvaluationError(node.code, f"error literal {node.code}")
        if isinstance(node, UnaryOpNode):
            return self._evaluate_unary(node)
        if isinstance(node, BinaryOpNode):
            return self._evaluate_binary(node)
        if isinstance(node, FunctionCallNode):
            return self._evaluate_call(node)
        raise FormulaEvaluationError("#VALUE!", f"unsupported AST node {type(node).__name__}")

    def _materialize_range(self, region: RangeRef) -> RangeValue:
        if region.area > MAX_RANGE_CELLS:
            raise FormulaEvaluationError(
                "#REF!", f"range {region.to_a1()} too large to materialise"
            )
        if self._range_provider is not None:
            filled = self._range_provider(region)
            # Accept both provider shapes: {CellAddress: Cell} (the classic
            # getCells contract) and {(row, column): value} (the model-level
            # fast path that avoids per-cell CellAddress/Cell allocation).
            values: dict[tuple[int, int], CellValue] = {}
            for key, item in filled.items():
                coordinate = key if type(key) is tuple else (key.row, key.column)
                values[coordinate] = item.value if isinstance(item, Cell) else item
            rows = [
                tuple(values.get((row, column))
                      for column in range(region.left, region.right + 1))
                for row in range(region.top, region.bottom + 1)
            ]
            return RangeValue(values=tuple(rows))
        rows = [
            tuple(
                self._provider(row, column)
                for column in range(region.left, region.right + 1)
            )
            for row in range(region.top, region.bottom + 1)
        ]
        return RangeValue(values=tuple(rows))

    def _evaluate_unary(self, node: UnaryOpNode) -> CellValue:
        operand = self._scalar(self._evaluate(node.operand))
        if node.operator == "-":
            return -to_number(operand)
        if node.operator == "+":
            return to_number(operand)
        if node.operator == "%":
            return to_number(operand) / 100.0
        raise FormulaEvaluationError("#VALUE!", f"unknown unary operator {node.operator!r}")

    def _evaluate_binary(self, node: BinaryOpNode) -> CellValue:
        left = self._scalar(self._evaluate(node.left))
        right = self._scalar(self._evaluate(node.right))
        operator = node.operator
        if operator == "&":
            return to_text(left) + to_text(right)
        if operator in {"=", "<>", "<", ">", "<=", ">="}:
            return self._compare(operator, left, right)
        left_number = to_number(left)
        right_number = to_number(right)
        if operator == "+":
            result = left_number + right_number
        elif operator == "-":
            result = left_number - right_number
        elif operator == "*":
            result = left_number * right_number
        elif operator == "/":
            if right_number == 0:
                raise FormulaEvaluationError("#DIV/0!", "division by zero")
            result = left_number / right_number
        elif operator == "^":
            result = left_number ** right_number
        else:
            raise FormulaEvaluationError("#VALUE!", f"unknown operator {operator!r}")
        return int(result) if isinstance(result, float) and result.is_integer() else result

    @staticmethod
    def _compare(operator: str, left: CellValue, right: CellValue) -> bool:
        # Numeric comparison when both sides are numeric; text otherwise.
        if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
                and not isinstance(left, bool) and not isinstance(right, bool):
            left_key: float | str = float(left)
            right_key: float | str = float(right)
        else:
            left_key = to_text(left).lower()
            right_key = to_text(right).lower()
        if operator == "=":
            return left_key == right_key
        if operator == "<>":
            return left_key != right_key
        if operator == "<":
            return left_key < right_key    # type: ignore[operator]
        if operator == ">":
            return left_key > right_key    # type: ignore[operator]
        if operator == "<=":
            return left_key <= right_key   # type: ignore[operator]
        return left_key >= right_key       # type: ignore[operator]

    def _evaluate_call(self, node: FunctionCallNode) -> CellValue:
        implementation = FUNCTION_REGISTRY.get(node.name)
        if implementation is None:
            raise FormulaEvaluationError("#NAME?", f"unknown function {node.name}")
        if (
            self._aggregate_store is not None
            and self.aggregate_cell is not None
            and node.name in DECOMPOSABLE_AGGREGATES
            and self._aggregate_store.enabled
            and node.arguments
            and all(
                isinstance(argument, RangeRefNode)
                and self._aggregate_store.tracks(self.aggregate_cell, argument.range)
                for argument in node.arguments
            )
        ):
            return self._evaluate_decomposable(node, implementation)
        arguments = []
        for argument_node in node.arguments:
            if node.name == "IFERROR" and argument_node is node.arguments[0]:
                # IFERROR traps evaluation errors in its first argument.
                try:
                    arguments.append(self._evaluate(argument_node))
                except FormulaEvaluationError as error:
                    arguments.append(error.code)
            else:
                arguments.append(self._evaluate(argument_node))
        return implementation(*arguments)

    def _evaluate_decomposable(self, node: FunctionCallNode, implementation) -> CellValue:
        """Serve a decomposable aggregate from running state (the O(Δ) path).

        Each range argument resolves to its running state; a missing (or
        component-degraded) state is rebuilt from one bulk range read.  If
        even a fresh rebuild cannot serve the function exactly (inexact
        float sums), the call falls back to the classic evaluation over the
        materialised ranges — correctness always wins over incrementality.
        """
        store = self._aggregate_store
        address = self.aggregate_cell
        states = []
        materialized: list[RangeValue | None] = []
        from_state = True
        for argument in node.arguments:
            region = argument.range
            state = store.state_for(address, region)
            values = None
            if state is None or (
                not state.supports(node.name) and state.rebuild_restores(node.name)
            ):
                # Missing state, or a degradation a full read can repair
                # (a MIN/MAX extremum support loss).  Content-driven
                # degradation — inexact sums, NaN-poisoned ordering —
                # cannot be rebuilt away while the content stands, so
                # those cases skip the rebuild and fall straight through
                # to the classic evaluation below.
                state = None
                if (
                    self._slab_provider is not None
                    and store.use_columnar
                    and region.area <= MAX_RANGE_CELLS
                ):
                    built, vectorized = columnar.build_state(
                        self._slab_provider(region))
                    state = store.install(address, region, built,
                                          columnar=vectorized)
                if state is None:
                    values = self._materialize_range(region)
                    state = store.build(address, region, values)
                from_state = False
            states.append(state)
            materialized.append(values)
        if all(state.supports(node.name) for state in states):
            if from_state:
                store.stats.hits += 1
            return combine_aggregate(node.name, states)
        # Correctness always wins over incrementality: evaluate classically,
        # reusing any range already materialised for a state rebuild.
        store.stats.fallbacks += 1
        return implementation(*(
            values if values is not None else self._materialize_range(argument.range)
            for argument, values in zip(node.arguments, materialized)
        ))

    @staticmethod
    def _scalar(value: CellValue | RangeValue) -> CellValue:
        if isinstance(value, RangeValue):
            if value.rows == 1 and value.columns == 1:
                return value.values[0][0]
            raise FormulaEvaluationError("#VALUE!", "range used in scalar context")
        return value


# ---------------------------------------------------------------------- #
# static analysis
# ---------------------------------------------------------------------- #
def extract_references(formula: str | FormulaNode) -> tuple[list[CellAddress], list[RangeRef]]:
    """Return the single-cell and range references a formula reads.

    Used to build the dependency graph and to measure per-formula access
    footprints for the Section II statistics.
    """
    node = parse_formula(formula) if isinstance(formula, str) else formula
    cells: list[CellAddress] = []
    ranges: list[RangeRef] = []
    for descendant in node.walk():
        if isinstance(descendant, CellRefNode):
            cells.append(descendant.address)
        elif isinstance(descendant, RangeRefNode):
            ranges.append(descendant.range)
    return cells, ranges


def referenced_coordinates(formula: str | FormulaNode) -> set[tuple[int, int]]:
    """All (row, column) pairs a formula reads, ranges expanded."""
    cells, ranges = extract_references(formula)
    coordinates = {(address.row, address.column) for address in cells}
    for region in ranges:
        if region.area > MAX_RANGE_CELLS:
            raise FormulaSyntaxError(f"range {region.to_a1()} too large to expand")
        for address in region.addresses():
            coordinates.add((address.row, address.column))
    return coordinates


def access_footprint(formula: str | FormulaNode) -> int:
    """Number of cells accessed by a formula (Table I column 10)."""
    cells, ranges = extract_references(formula)
    return len({(address.row, address.column) for address in cells}) + sum(
        region.area for region in ranges
    )


def evaluate_formulas(
    formulas: Iterable[tuple[CellAddress, str]], provider: CellProvider
) -> dict[CellAddress, CellValue]:
    """Evaluate a batch of formulas against a provider; errors become codes."""
    evaluator = Evaluator(provider)
    results: dict[CellAddress, CellValue] = {}
    for address, formula in formulas:
        try:
            results[address] = evaluator.evaluate(formula)
        except FormulaEvaluationError as error:
            results[address] = error.code
    return results
