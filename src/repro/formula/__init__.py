"""Spreadsheet formula engine.

The paper's corpus study (Section II-C, Figure 5) finds arithmetic, SUM,
AVERAGE, IF, ISBLANK, VLOOKUP, LOG/LN/ROUND/FLOOR and lookup/search formulae
dominate real sheets.  This package provides a tokenizer, a Pratt parser
producing a small AST, an evaluator over those functions, and the dependency
graph used by the DataSpread execution engine to trigger recomputation.
"""

from repro.formula.tokenizer import tokenize, Token, TokenType
from repro.formula.ast_nodes import (
    FormulaNode,
    NumberNode,
    StringNode,
    BoolNode,
    CellRefNode,
    RangeRefNode,
    ErrorNode,
    UnaryOpNode,
    BinaryOpNode,
    FunctionCallNode,
)
from repro.formula.parser import parse_formula
from repro.formula.serializer import to_formula
from repro.formula.rewrite import StructuralEdit, rewrite_formula
from repro.formula.evaluator import Evaluator, extract_references
from repro.formula.dependencies import (
    DependencyGraph,
    DependencyGraphStats,
    StructuralRewrite,
)
from repro.formula.functions import FUNCTION_REGISTRY, register_function

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse_formula",
    "to_formula",
    "FormulaNode",
    "NumberNode",
    "StringNode",
    "BoolNode",
    "CellRefNode",
    "RangeRefNode",
    "ErrorNode",
    "UnaryOpNode",
    "BinaryOpNode",
    "FunctionCallNode",
    "StructuralEdit",
    "rewrite_formula",
    "Evaluator",
    "extract_references",
    "DependencyGraph",
    "DependencyGraphStats",
    "StructuralRewrite",
    "FUNCTION_REGISTRY",
    "register_function",
]
