"""Pratt (precedence-climbing) parser for spreadsheet formulae."""

from __future__ import annotations

from repro.errors import FormulaSyntaxError
from repro.formula.ast_nodes import (
    BinaryOpNode,
    BoolNode,
    CellRefNode,
    ErrorNode,
    FormulaNode,
    FunctionCallNode,
    NumberNode,
    RangeRefNode,
    StringNode,
    UnaryOpNode,
)
from repro.formula.tokenizer import Token, TokenType, tokenize
from repro.grid.address import CellAddress
from repro.grid.range import RangeRef

#: Binary operator precedence, low to high.  Mirrors spreadsheet semantics:
#: comparisons < concatenation < additive < multiplicative < exponentiation.
_BINARY_PRECEDENCE = {
    "=": 10,
    "<>": 10,
    "<": 10,
    ">": 10,
    "<=": 10,
    ">=": 10,
    "&": 20,
    "+": 30,
    "-": 30,
    "*": 40,
    "/": 40,
    "^": 50,
}

_RIGHT_ASSOCIATIVE = {"^"}


def _absolute_flags(reference: str) -> tuple[bool, bool]:
    """The (column_absolute, row_absolute) ``$`` markers of one A1 corner."""
    text = reference.strip()
    return text.startswith("$"), "$" in text[1:]


def _parse_range_reference(text: str) -> RangeRefNode:
    """Build a range node, keeping each corner's ``$`` markers.

    Corners may arrive in any order (``B10:A1``); the range normalises to
    top-left/bottom-right, so the flags follow the coordinate they annotate.
    """
    start_text, end_text = text.split(":", 1)
    start_column_absolute, start_row_absolute = _absolute_flags(start_text)
    end_column_absolute, end_row_absolute = _absolute_flags(end_text)
    start = CellAddress.from_a1(start_text)
    end = CellAddress.from_a1(end_text)
    if start.column > end.column:
        start_column_absolute, end_column_absolute = end_column_absolute, start_column_absolute
    if start.row > end.row:
        start_row_absolute, end_row_absolute = end_row_absolute, start_row_absolute
    return RangeRefNode(
        range=RangeRef.from_addresses(start, end),
        start_column_absolute=start_column_absolute,
        start_row_absolute=start_row_absolute,
        end_column_absolute=end_column_absolute,
        end_row_absolute=end_row_absolute,
    )


class _Parser:
    """Recursive-descent / precedence-climbing parser over a token list."""

    def __init__(self, tokens: list[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    # ------------------------------------------------------------------ #
    def parse(self) -> FormulaNode:
        node = self._parse_expression(0)
        if self._current.type is not TokenType.END:
            raise FormulaSyntaxError(
                f"unexpected token {self._current.text!r} at offset "
                f"{self._current.position} in {self._source!r}"
            )
        return node

    # ------------------------------------------------------------------ #
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        if self._current.type is not token_type:
            raise FormulaSyntaxError(
                f"expected {token_type.name} but found {self._current.text!r} "
                f"at offset {self._current.position} in {self._source!r}"
            )
        return self._advance()

    # ------------------------------------------------------------------ #
    def _parse_expression(self, min_precedence: int) -> FormulaNode:
        left = self._parse_unary()
        while True:
            token = self._current
            if token.type is not TokenType.OPERATOR:
                break
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                break
            self._advance()
            if token.text in _RIGHT_ASSOCIATIVE:
                right = self._parse_expression(precedence)
            else:
                right = self._parse_expression(precedence + 1)
            left = BinaryOpNode(operator=token.text, left=left, right=right)
        return left

    def _parse_unary(self) -> FormulaNode:
        token = self._current
        if token.type is TokenType.OPERATOR and token.text in {"+", "-"}:
            self._advance()
            operand = self._parse_unary()
            return UnaryOpNode(operator=token.text, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> FormulaNode:
        node = self._parse_primary()
        while self._current.type is TokenType.OPERATOR and self._current.text == "%":
            self._advance()
            node = UnaryOpNode(operator="%", operand=node)
        return node

    def _parse_primary(self) -> FormulaNode:
        token = self._advance()
        if token.type is TokenType.NUMBER:
            return NumberNode(value=float(token.text))
        if token.type is TokenType.STRING:
            return StringNode(value=token.text[1:-1].replace('""', '"'))
        if token.type is TokenType.BOOLEAN:
            return BoolNode(value=token.text == "TRUE")
        if token.type is TokenType.RANGE:
            return _parse_range_reference(token.text)
        if token.type is TokenType.CELL:
            column_absolute, row_absolute = _absolute_flags(token.text)
            return CellRefNode(
                address=CellAddress.from_a1(token.text),
                column_absolute=column_absolute,
                row_absolute=row_absolute,
            )
        if token.type is TokenType.ERROR:
            return ErrorNode(code=token.text.upper())
        if token.type is TokenType.IDENTIFIER:
            if self._current.type is TokenType.LPAREN:
                return self._parse_function_call(token)
            raise FormulaSyntaxError(
                f"unknown identifier {token.text!r} at offset {token.position} "
                f"in {self._source!r}"
            )
        if token.type is TokenType.LPAREN:
            node = self._parse_expression(0)
            self._expect(TokenType.RPAREN)
            return node
        raise FormulaSyntaxError(
            f"unexpected token {token.text!r} at offset {token.position} in {self._source!r}"
        )

    def _parse_function_call(self, name_token: Token) -> FormulaNode:
        self._expect(TokenType.LPAREN)
        arguments: list[FormulaNode] = []
        if self._current.type is not TokenType.RPAREN:
            arguments.append(self._parse_expression(0))
            while self._current.type is TokenType.COMMA:
                self._advance()
                arguments.append(self._parse_expression(0))
        self._expect(TokenType.RPAREN)
        return FunctionCallNode(name=name_token.text.upper(), arguments=tuple(arguments))


def parse_formula(formula: str) -> FormulaNode:
    """Parse a formula body (text after the leading ``=``) into an AST.

    >>> parse_formula("SUM(B2:C2)+D2")  # doctest: +ELLIPSIS
    BinaryOpNode(...)
    """
    text = formula.strip()
    if text.startswith("="):
        text = text[1:]
    if not text:
        raise FormulaSyntaxError("empty formula")
    return _Parser(tokenize(text), text).parse()
