"""Columnar (vectorized) construction of aggregate running state.

Cold evaluation of a decomposable aggregate over a database-scale range —
the first ``SUM(A1:A1000000)`` — has to read the whole rectangle once no
matter what; the scalar path then folds the values into a
:class:`~repro.formula.aggregates.RangeAggregateState` one ``add()`` call
at a time, and at a million cells the per-value Python dispatch dominates
the read.  This module replaces that fold with a handful of NumPy
reductions over one dense row-major slab (the storage layer's
``get_values_dense``), producing a state **bit-identical** to the scalar
loop:

* the exact-integer sum guard (integral and ``abs(v) <= 2**28``) becomes a
  ``floor(x) == x`` / magnitude mask, with the qualifying values summed in
  ``int64`` (exact: 2**28-bounded values times a 10**7-cell range cap stay
  below 2**52);
* NaN poisons ordering *and* summation by multiplicity, exactly as
  ``add()`` does — and because the scalar loop stops tracking min/max at
  the first NaN, the vectorized min/max (with multiplicity) is taken over
  the *prefix before the first NaN*, reproducing even the dormant
  components a later rebuild might resurrect;
* blank cells (``None``) are skipped, text and booleans count as filled
  but contribute nothing numeric — ``bool`` is detected by exact type, as
  ``isinstance`` checks would fold ``True`` into the integers.

Integers beyond float range (``float()`` raises ``OverflowError``) and any
exotic value type bail out to :func:`_build_python`, a straight ``add()``
loop with the same semantics by construction.  When NumPy is absent the
module degrades to that loop wholesale — :data:`NUMPY_AVAILABLE` lets
callers and benchmarks see which path is live.
"""

from __future__ import annotations

from repro.formula.aggregates import EXACT_VALUE_LIMIT, RangeAggregateState

try:  # NumPy is an optional extra (``pip install repro[columnar]``).
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

NUMPY_AVAILABLE = _np is not None


class _Unsupported(Exception):
    """The slab holds value types the vectorized path cannot audit."""


def build_state(values: list, *,
                force_python: bool = False) -> tuple[RangeAggregateState, bool]:
    """Fold a dense row-major slab (``None`` = blank) into a fresh state.

    Returns ``(state, vectorized)`` where ``vectorized`` reports whether
    the NumPy path served the build (``False`` on the pure-Python
    fallback, so stats can tell the two apart).
    """
    if force_python or _np is None:
        return _build_python(values), False
    try:
        return _build_numpy(values), True
    except (OverflowError, _Unsupported):
        # OverflowError: an integer beyond float64 range, which
        # ``np.fromiter`` cannot represent but the scalar loop maps to the
        # NaN poison path.  _Unsupported: value types outside the audited
        # set.  Both are correctness bails, not errors.
        return _build_python(values), False


def _build_python(values: list) -> RangeAggregateState:
    """The scalar fold — the semantic ground truth the masks must match."""
    state = RangeAggregateState()
    add = state.add
    for value in values:
        if value is not None:
            add(value)
    return state


def _build_numpy(values: list) -> RangeAggregateState:
    # One C-speed pass audits the value types present; ``type()`` (not
    # ``isinstance``) keeps bool distinct from int and rejects subclasses,
    # whose arithmetic the masks below could not be trusted to mirror.
    kinds = set(map(type, values))
    if not kinds <= {type(None), int, float, bool, str}:
        raise _Unsupported
    state = RangeAggregateState()
    if bool in kinds or str in kinds:
        # Mixed content: text/booleans are filled but contribute nothing
        # numeric, so they only survive into the filled count.
        state.filled = len(values) - values.count(None)
        numbers = [v for v in values if type(v) is int or type(v) is float]
    else:
        numbers = values if type(None) not in kinds else [
            v for v in values if v is not None
        ]
        state.filled = len(numbers)
    count = len(numbers)
    state.count = count
    if not count:
        return state
    xs = _np.fromiter(numbers, dtype=_np.float64, count=count)
    nan_mask = _np.isnan(xs)
    poisoned = int(nan_mask.sum())
    # NaN compares unequal to everything including itself, so the equality
    # against floor() already excludes it from the exact mask.
    exact_mask = (_np.floor(xs) == xs) & (_np.abs(xs) <= EXACT_VALUE_LIMIT)
    exact = int(exact_mask.sum())
    if exact:
        state.total = int(xs[exact_mask].astype(_np.int64).sum())
    state.inexact = count - exact
    state.poisoned = poisoned
    if poisoned:
        state.min_valid = False
        state.max_valid = False
        # The scalar loop stops maintaining min/max at the first NaN;
        # mirror the dormant components it leaves behind exactly.
        ordered = xs[: int(_np.argmax(nan_mask))]
    else:
        ordered = xs
    if ordered.size:
        low = ordered.min()
        high = ordered.max()
        state.min_value = float(low)
        state.min_count = int((ordered == low).sum())
        state.max_value = float(high)
        state.max_count = int((ordered == high).sum())
    return state
