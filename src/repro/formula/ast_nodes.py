"""AST node types for parsed formulae."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.grid.address import CellAddress
from repro.grid.range import RangeRef


class FormulaNode:
    """Base class of all formula AST nodes."""

    def children(self) -> Iterator["FormulaNode"]:
        """Iterate direct child nodes (empty for leaves)."""
        return iter(())

    def walk(self) -> Iterator["FormulaNode"]:
        """Iterate this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True, slots=True)
class NumberNode(FormulaNode):
    """A numeric literal."""

    value: float


@dataclass(frozen=True, slots=True)
class StringNode(FormulaNode):
    """A string literal."""

    value: str


@dataclass(frozen=True, slots=True)
class BoolNode(FormulaNode):
    """A TRUE/FALSE literal."""

    value: bool


@dataclass(frozen=True, slots=True)
class CellRefNode(FormulaNode):
    """A single-cell reference (e.g. ``B2`` or ``$B$2``).

    ``column_absolute``/``row_absolute`` record the ``$`` markers of the
    source text.  They do not affect evaluation or dependency tracking —
    absoluteness matters for copy/fill semantics — but they survive the
    serializer, so structural-edit rewriting never strips a user's ``$``.
    """

    address: CellAddress
    column_absolute: bool = False
    row_absolute: bool = False


@dataclass(frozen=True, slots=True)
class RangeRefNode(FormulaNode):
    """A rectangular range reference (e.g. ``B2:C10`` or ``$B$2:C$10``).

    The four ``*_absolute`` flags mirror the ``$`` markers on the start and
    end corners of the source text (see :class:`CellRefNode`).
    """

    range: RangeRef
    start_column_absolute: bool = False
    start_row_absolute: bool = False
    end_column_absolute: bool = False
    end_row_absolute: bool = False


@dataclass(frozen=True, slots=True)
class ErrorNode(FormulaNode):
    """A literal spreadsheet error such as ``#REF!``.

    Produced by the parser for error literals and by the structural-edit
    rewriter when a reference's entire referent was deleted.  Evaluating an
    error node yields the error code itself.
    """

    code: str


@dataclass(frozen=True, slots=True)
class UnaryOpNode(FormulaNode):
    """A unary operator application (``-x``, ``+x``, ``x%``)."""

    operator: str
    operand: FormulaNode

    def children(self) -> Iterator[FormulaNode]:
        yield self.operand


@dataclass(frozen=True, slots=True)
class BinaryOpNode(FormulaNode):
    """A binary operator application."""

    operator: str
    left: FormulaNode
    right: FormulaNode

    def children(self) -> Iterator[FormulaNode]:
        yield self.left
        yield self.right


@dataclass(frozen=True, slots=True)
class FunctionCallNode(FormulaNode):
    """A function invocation such as ``SUM(B2:C10)``."""

    name: str
    arguments: tuple[FormulaNode, ...]

    def children(self) -> Iterator[FormulaNode]:
        yield from self.arguments
