"""AST node types for parsed formulae."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.grid.address import CellAddress
from repro.grid.range import RangeRef


class FormulaNode:
    """Base class of all formula AST nodes."""

    def children(self) -> Iterator["FormulaNode"]:
        """Iterate direct child nodes (empty for leaves)."""
        return iter(())

    def walk(self) -> Iterator["FormulaNode"]:
        """Iterate this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True, slots=True)
class NumberNode(FormulaNode):
    """A numeric literal."""

    value: float


@dataclass(frozen=True, slots=True)
class StringNode(FormulaNode):
    """A string literal."""

    value: str


@dataclass(frozen=True, slots=True)
class BoolNode(FormulaNode):
    """A TRUE/FALSE literal."""

    value: bool


@dataclass(frozen=True, slots=True)
class CellRefNode(FormulaNode):
    """A single-cell reference (e.g. ``B2``)."""

    address: CellAddress


@dataclass(frozen=True, slots=True)
class RangeRefNode(FormulaNode):
    """A rectangular range reference (e.g. ``B2:C10``)."""

    range: RangeRef


@dataclass(frozen=True, slots=True)
class UnaryOpNode(FormulaNode):
    """A unary operator application (``-x``, ``+x``, ``x%``)."""

    operator: str
    operand: FormulaNode

    def children(self) -> Iterator[FormulaNode]:
        yield self.operand


@dataclass(frozen=True, slots=True)
class BinaryOpNode(FormulaNode):
    """A binary operator application."""

    operator: str
    left: FormulaNode
    right: FormulaNode

    def children(self) -> Iterator[FormulaNode]:
        yield self.left
        yield self.right


@dataclass(frozen=True, slots=True)
class FunctionCallNode(FormulaNode):
    """A function invocation such as ``SUM(B2:C10)``."""

    name: str
    arguments: tuple[FormulaNode, ...]

    def children(self) -> Iterator[FormulaNode]:
        yield from self.arguments
