"""Incremental (delta-maintained) aggregate state for range formulas.

The classic incremental-view-maintenance move applied to spreadsheet
formulas: a decomposable aggregate over a range — ``SUM``, ``COUNT``,
``COUNTA``, ``AVERAGE``, and (with an invalidation fallback) ``MIN`` /
``MAX`` — keeps *running state* so that a point edit inside a 100k-cell
range recomputes its dependents in O(Δ) from the edit's old→new value
delta instead of re-reading the whole rectangle.

Architecture
------------
* :class:`RangeAggregateState` holds the running components for one
  registered range: exact integer sum, numeric count, filled count, and
  min/max with multiplicity.  ``add``/``remove`` apply one value's
  contribution; ``supports(name)`` reports whether a component can still
  serve a given function exactly.
* :class:`AggregateStore` owns every state, keyed by *distinct range*.
  Each state carries a refcounted set of subscribing formula cells: ten
  thousand ``SUM(A1:A100000)`` formulas share **one** state, so a point
  edit inside the column performs one state update, not ten thousand.
  Subscriptions are made lazily when the evaluator serves or builds a
  state, and released through the dependency graph's ``on_unregister``
  hook; the state is dropped when its last subscriber unregisters.  The
  engine routes every committed cell-value change through
  :meth:`AggregateStore.apply_edit` (or the two-phase ``targets_for`` /
  ``apply_delta`` pair), which scans the *distinct ranges* for
  containment — O(distinct states), independent of subscriber count.

Exactness contract
------------------
The delta path must agree **bit-for-bit** with a full range read, because
the randomized equivalence harness compares engines cell-for-cell.  Sums
are therefore tracked as exact Python integers, and a contribution only
qualifies when it is an integral number with magnitude at most
:data:`EXACT_VALUE_LIMIT` (2**28): with ranges capped at
``MAX_RANGE_CELLS`` (10**7 < 2**24) cells, every partial sum the full-read
path computes stays below 2**52, where float addition is exact.  Any
other numeric (a non-integral float, a huge integer, a NaN) is an
*inexact contribution*, tracked by multiplicity: while the range holds at
least one, ``SUM``/``AVERAGE`` fall back to the full range read
(``COUNT``/``COUNTA`` keep working, and so do ``MIN``/``MAX`` unless the
value is *unordered* — NaN, or an integer beyond float range — which
poisons the ordering components too), and they recover the O(Δ) path the
moment the last inexact value is edited out.
``MIN``/``MAX`` track the extremum *with multiplicity* in
the float domain (exactly what the full path compares); removing the last
copy of the extremum is a *support loss* — the state cannot know the
runner-up — and invalidates that component until the next full read
rebuilds it.

Fallback matrix (who invalidates what)
--------------------------------------
* unknown old value (first write to an uncached cell mid-batch) — the
  affected states are dropped;
* structural edits — states are *spliced* through the same
  ``StructuralEdit`` arithmetic the dependency graph uses: an untouched
  or purely translated range keeps its state at the remapped key, an
  insert inside a range keeps it (the new lines are blank — a no-op
  contribution), and only ranges actually losing content (overlap with
  deleted lines, cells clamped off the sheet) are dropped;
* ``link_table`` — only states whose range overlaps the linked region are
  dropped (the rest of the sheet did not change);
* ``optimize_storage`` — nothing: a relayout moves cells between models
  without changing any coordinate→value binding, so every state survives;
* batch aborts past a commit point — the engine clears the whole store
  (the snapshot no longer matches reality);
* formula (re)registration — the formula unsubscribes; the state is
  dropped only when it was the last subscriber;
* ``#REF!`` / oversized ranges — evaluation raises before any state is
  consulted or built;
* MIN/MAX support loss, inexact sums — the single component degrades, the
  others keep serving;
* ranges smaller than :attr:`AggregateStore.min_state_area` normally get
  no state — a tiny materialisation costs what one delta costs — but the
  floor is *refcount-aware*: once
  :attr:`AggregateStore.min_state_subscribers` distinct formulas have
  evaluated an aggregate over the same small range, one shared state
  amortises across all of them and the range is promoted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FormulaEvaluationError
from repro.formula.functions import RangeValue, _normalized_number
from repro.formula.rewrite import StructuralEdit
from repro.grid.address import CellAddress
from repro.grid.range import RangeRef

#: The aggregate functions the delta path can serve.
DECOMPOSABLE_AGGREGATES = frozenset({"SUM", "COUNT", "COUNTA", "AVERAGE", "MIN", "MAX"})

#: Largest integral magnitude a contribution may have and keep the exact
#: integer sum guaranteed to match the full-read float sum (see module
#: docstring for the 2**28 * 2**24 < 2**53 argument).
EXACT_VALUE_LIMIT = 1 << 28

#: Ranges smaller than this many cells are not worth a running state: a
#: full read of a few dozen cells costs about as much as one delta, while
#: every state makes every edit inside its range pay an eager delta — on a
#: hot small range read by thousands of formulas that tax lands on the
#: edit-acknowledgment path the async scheduler exists to protect.  Tests
#: lower :attr:`AggregateStore.min_state_area` to exercise the machinery
#: on small grids.
DEFAULT_MIN_STATE_AREA = 256

#: Distinct formulas that must show interest in one small range before the
#: area floor is waived for it: at that point a single shared state
#: amortises across all of them, flipping the cost argument behind
#: :data:`DEFAULT_MIN_STATE_AREA`.
DEFAULT_MIN_STATE_SUBSCRIBERS = 8

#: Bound on the number of small ranges whose interest is tracked (the
#: interest map must not grow without limit under adversarial churn).
_INTEREST_CAPACITY = 4096


@dataclass
class AggregateStats:
    """Instrumentation counters (exposed for tests and benchmarks)."""

    hits: int = 0              # aggregate calls served entirely from state
    builds: int = 0            # states (re)built from a full range read
    columnar_builds: int = 0   # builds served by the vectorized columnar path
    deltas: int = 0            # point deltas applied to a state
    invalidations: int = 0     # states dropped (unknown old value, last unsubscribe, ...)
    support_losses: int = 0    # MIN/MAX extremum removals degrading a component
    fallbacks: int = 0         # calls that materialized despite a fresh state
    full_invalidations: int = 0  # store-wide clears (aborts past a commit point)
    splices: int = 0           # states carried live across a structural edit

    def reset(self) -> None:
        self.hits = 0
        self.builds = 0
        self.columnar_builds = 0
        self.deltas = 0
        self.invalidations = 0
        self.support_losses = 0
        self.fallbacks = 0
        self.full_invalidations = 0
        self.splices = 0


class RangeAggregateState:
    """Running decomposable components over one registered range."""

    __slots__ = (
        "total", "count", "filled", "inexact", "poisoned",
        "min_value", "min_count", "min_valid",
        "max_value", "max_count", "max_valid",
    )

    def __init__(self) -> None:
        self.total = 0          # exact integer sum of the exact contributions
        self.count = 0          # numeric (non-bool) values
        self.filled = 0         # non-blank values
        #: Number of contributions currently in the range that cannot be
        #: summed exactly (non-integral floats, huge magnitudes, NaN).
        #: Tracked by multiplicity — like the min/max support — so SUM and
        #: AVERAGE recover as soon as the last inexact value is edited out.
        self.inexact = 0
        #: Number of unordered contributions (NaN, or integers beyond
        #: float range) currently in the range.  While positive, the
        #: min/max components are content-poisoned: a rebuild cannot
        #: repair them, unlike an extremum support loss.
        self.poisoned = 0
        self.min_value = math.inf
        self.min_count = 0      # multiplicity of the minimum (float equality)
        self.min_valid = True
        self.max_value = -math.inf
        self.max_count = 0
        self.max_valid = True

    @property
    def sum_exact(self) -> bool:
        """Whether ``total`` faithfully mirrors the full-read float sum."""
        return self.inexact == 0

    @classmethod
    def from_range_value(cls, values: RangeValue) -> "RangeAggregateState":
        state = cls()
        for value in values.flatten():
            state.add(value)
        return state

    # ------------------------------------------------------------------ #
    def rebuild_restores(self, name: str) -> bool:
        """Whether a full-read rebuild could repair support for ``name``
        with the range content unchanged.

        An extremum support loss is repairable (the re-read finds the new
        extremum); content-driven degradation — NaN still in the range
        for MIN/MAX, any inexact contribution for SUM/AVERAGE — is not,
        and rebuilding for it would add a futile O(area) state pass to
        every evaluation's unavoidable full read.
        """
        if name in ("MIN", "MAX"):
            return self.poisoned == 0
        return False

    def supports(self, name: str) -> bool:
        """Whether this state can serve ``name`` exactly right now."""
        if name in ("SUM", "AVERAGE"):
            return self.sum_exact
        if name == "MIN":
            return self.min_valid
        if name == "MAX":
            return self.max_valid
        return True  # COUNT / COUNTA are always exact

    @staticmethod
    def _as_float(value) -> float:
        """``float(value)`` with overflow mapped to the NaN poison path.

        An integer beyond float range would raise ``OverflowError`` halfway
        through a delta, leaving the counters inconsistent; treating it as
        NaN keeps the state consistent and routes every order/sum component
        to the full-read fallback (which raises exactly like a from-scratch
        evaluation would).
        """
        try:
            return float(value)
        except OverflowError:
            return math.nan

    def add(self, value: object) -> None:
        """Fold one cell value's contribution in."""
        if value is None:
            return
        self.filled += 1
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return  # text and booleans carry no numeric contribution in ranges
        self.count += 1
        number = self._as_float(value)
        if number != number:  # NaN poisons ordering and summation alike
            self.inexact += 1
            self.poisoned += 1
            self.min_valid = False
            self.max_valid = False
            return
        if number.is_integer() and abs(number) <= EXACT_VALUE_LIMIT:
            self.total += int(number)
        else:
            self.inexact += 1
        if self.min_valid:
            if self.count == 1 or number < self.min_value:
                self.min_value = number
                self.min_count = 1
            elif number == self.min_value:
                self.min_count += 1
        if self.max_valid:
            if self.count == 1 or number > self.max_value:
                self.max_value = number
                self.max_count = 1
            elif number == self.max_value:
                self.max_count += 1

    def remove(self, value: object) -> None:
        """Retract one cell value's contribution."""
        if value is None:
            return
        self.filled -= 1
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        self.count -= 1
        number = self._as_float(value)
        if number != number:
            # Its inexactness and poison leave with it; the min/max flags
            # stay down until a rebuild (or the reset below when the
            # numeric support empties).
            self.inexact -= 1
            self.poisoned -= 1
            if self.count == 0:
                self.min_value = math.inf
                self.min_count = 0
                self.min_valid = True
                self.max_value = -math.inf
                self.max_count = 0
                self.max_valid = True
            return
        if number.is_integer() and abs(number) <= EXACT_VALUE_LIMIT:
            self.total -= int(number)
        else:
            self.inexact -= 1
        if self.count == 0:
            # Empty support is fully known again: MIN/MAX of no numbers is 0.
            self.min_value = math.inf
            self.min_count = 0
            self.min_valid = True
            self.max_value = -math.inf
            self.max_count = 0
            self.max_valid = True
            return
        if self.min_valid and number == self.min_value:
            self.min_count -= 1
            if self.min_count == 0:
                self.min_valid = False  # the runner-up is unknown
        if self.max_valid and number == self.max_value:
            self.max_count -= 1
            if self.max_count == 0:
                self.max_valid = False


def combine_aggregate(name: str, states: list[RangeAggregateState]) -> object:
    """The aggregate value over one or more (supported) states.

    Reproduces the full-read semantics exactly, including the ``#DIV/0!``
    of ``AVERAGE`` over no numbers and the Excel-style 0 for ``MIN`` /
    ``MAX`` of no numbers.
    """
    if name == "SUM":
        return sum(state.total for state in states)
    if name == "COUNT":
        return sum(state.count for state in states)
    if name == "COUNTA":
        return sum(state.filled for state in states)
    if name == "AVERAGE":
        count = sum(state.count for state in states)
        if not count:
            raise FormulaEvaluationError("#DIV/0!", "AVERAGE of no numbers")
        return _normalized_number(sum(state.total for state in states) / count)
    if name == "MIN":
        lows = [state.min_value for state in states if state.count]
        return _normalized_number(min(lows)) if lows else 0
    if name == "MAX":
        highs = [state.max_value for state in states if state.count]
        return _normalized_number(max(highs)) if highs else 0
    raise FormulaEvaluationError("#VALUE!", f"{name} is not decomposable")


#: A (range, state) pair the engine threads from ``targets_for``
#: (pre-edit) to ``apply_delta`` (post-edit).  One pair per *distinct
#: range* regardless of how many formulas subscribe to it.
DeltaTarget = tuple[RangeRef, RangeAggregateState]


class _SharedState:
    """One distinct range's running state plus its subscribing formulas."""

    __slots__ = ("state", "subscribers")

    def __init__(self, state: RangeAggregateState,
                 subscribers: set[CellAddress]) -> None:
        self.state = state
        self.subscribers = subscribers


class AggregateStore:
    """Every running aggregate state, keyed by distinct range.

    The store is deliberately passive: the engine tells it about every
    committed cell-value change (``apply_edit`` or the two-phase
    ``targets_for``/``apply_delta``), the dependency graph tells it about
    formulas leaving the graph (the ``on_unregister`` hook drives
    ``drop_formula``), and the engine reports the events that move or
    invalidate content (``apply_structural_edit``, ``invalidate_region``,
    ``invalidate_all``).  The evaluator asks it for states (``state_for``)
    and registers freshly built ones (``build``/``install``); both sides
    of that exchange record the asking formula as a *subscriber* of the
    range, so the state lives exactly as long as at least one registered
    formula still reads it.

    ``targets_for`` scans the distinct ranges for containment: with state
    shared per range, the number of distinct states is the number of
    distinct rectangles under aggregation — typically a handful — and the
    scan cost is independent of how many formulas subscribe to each.
    """

    def __init__(self, graph) -> None:
        self._graph = graph
        self._states: dict[RangeRef, _SharedState] = {}
        self._subscriptions: dict[CellAddress, set[RangeRef]] = {}
        #: Small ranges (below the area floor) and the distinct formulas
        #: that evaluated an aggregate over them — the promotion ledger.
        self._interest: dict[RangeRef, set[CellAddress]] = {}
        self._enabled = True
        #: Smallest range area the evaluator keeps running state for
        #: (waived per-range once ``min_state_subscribers`` distinct
        #: formulas share it — see :meth:`tracks`).
        self.min_state_area = DEFAULT_MIN_STATE_AREA
        self.min_state_subscribers = DEFAULT_MIN_STATE_SUBSCRIBERS
        #: Whether cold builds may use the vectorized columnar path (the
        #: evaluator also needs a slab provider; flip off to benchmark the
        #: scalar build loop).
        self.use_columnar = True
        self.stats = AggregateStats()
        if graph is not None and hasattr(graph, "on_unregister"):
            # Formula (un)registration drives the refcount lifecycle: the
            # graph is the single source of truth for "this formula no
            # longer reads that range".
            graph.on_unregister = self.drop_formula

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """Whether the delta path is active (disable for benchmarking)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if not value:
            # States stop receiving deltas while disabled; they would be
            # stale (and wrong) if served after re-enabling.
            self._states.clear()
            self._subscriptions.clear()
            self._interest.clear()
        self._enabled = value

    @property
    def state_count(self) -> int:
        """Number of running states currently held (== distinct ranges)."""
        return len(self._states)

    def subscribers_of(self, region: RangeRef) -> frozenset[CellAddress]:
        """The formulas currently sharing ``region``'s state (for tests)."""
        entry = self._states.get(region)
        return frozenset(entry.subscribers) if entry is not None else frozenset()

    def subscription_count(self, address: CellAddress) -> int:
        """How many range states ``address`` currently subscribes to."""
        regions = self._subscriptions.get(address)
        return len(regions) if regions else 0

    # ------------------------------------------------------------------ #
    # evaluator-side API
    # ------------------------------------------------------------------ #
    def tracks(self, address: CellAddress, region: RangeRef) -> bool:
        """Whether the evaluator should serve ``address``×``region`` from
        running state.

        A range containing the formula's own cell is never tracked (see
        :meth:`build`).  Otherwise the area floor applies — made
        *refcount-aware*: a small range is promoted once
        ``min_state_subscribers`` distinct formulas have shown interest,
        because one shared state amortised over many readers beats many
        tiny materialisations.  Calls below the floor record interest, so
        the promotion needs no separate registration step.
        """
        if not self._enabled:
            return False
        if region.contains_coordinates(address.row, address.column):
            return False
        if region.area >= self.min_state_area or region in self._states:
            return True
        interested = self._interest.get(region)
        if interested is None:
            if len(self._interest) >= _INTEREST_CAPACITY:
                return False
            interested = self._interest[region] = set()
        if len(interested) >= self.min_state_subscribers:
            return True
        interested.add(address)
        return len(interested) >= self.min_state_subscribers

    def state_for(self, address: CellAddress, region: RangeRef) -> RangeAggregateState | None:
        """The shared running state of ``region``, subscribing ``address``.

        Never serves a range containing the asking formula's own cell —
        the formula's own commit could not be folded back coherently.
        """
        if not self._enabled:
            return None
        entry = self._states.get(region)
        if entry is None or region.contains_coordinates(address.row, address.column):
            return None
        self._subscribe(address, region, entry)
        return entry.state

    def build(self, address: CellAddress, region: RangeRef,
              values: RangeValue) -> RangeAggregateState:
        """(Re)build a state from one materialized range read."""
        return self.install(address, region, RangeAggregateState.from_range_value(values))

    def install(self, address: CellAddress, region: RangeRef,
                state: RangeAggregateState, *, columnar: bool = False) -> RangeAggregateState:
        """Register an already-built state (shared per distinct range).

        A range containing the owning formula's *own* cell (a self-cycle
        the topological order tolerates rather than raising on) is never
        cached: the formula's own commit could not be folded back into its
        state coherently, so a cached state would drift from the full-read
        baseline.  The state is still returned for this one evaluation —
        the caller already paid for the read — but every future evaluation
        re-reads, exactly like the baseline engine.

        A rebuild (the range already has an entry) replaces the shared
        components in place and keeps the subscriber set: the other
        formulas reading the range see the repaired state immediately.
        """
        if not self._enabled or region.contains_coordinates(address.row, address.column):
            return state
        entry = self._states.get(region)
        if entry is None:
            entry = self._states[region] = _SharedState(state, set())
        else:
            entry.state = state
        self._subscribe(address, region, entry)
        self._interest.pop(region, None)
        self.stats.builds += 1
        if columnar:
            self.stats.columnar_builds += 1
        return state

    def _subscribe(self, address: CellAddress, region: RangeRef,
                   entry: _SharedState) -> None:
        entry.subscribers.add(address)
        self._subscriptions.setdefault(address, set()).add(region)

    # ------------------------------------------------------------------ #
    # engine-side API
    # ------------------------------------------------------------------ #
    def targets_for(self, address: CellAddress) -> list[DeltaTarget]:
        """The states whose range contains ``address`` (pre-edit phase).

        One containment scan over the *distinct* ranges: the cost is
        O(states held), independent of how many formulas subscribe to
        each.  A state over a range containing its only reader's own cell
        is never cached (see :meth:`install`), so no self-exclusion filter
        is needed here.
        """
        if not self._enabled or not self._states:
            return []
        row, column = address.row, address.column
        return [
            (region, entry.state)
            for region, entry in self._states.items()
            if region.contains_coordinates(row, column)
        ]

    def apply_delta(self, targets: list[DeltaTarget], old: object, new: object) -> None:
        """Fold an old→new value change into the captured targets."""
        if old is new or (type(old) is type(new) and old == new):
            return
        for _region, state in targets:
            losses = state.min_valid + state.max_valid
            state.remove(old)
            state.add(new)
            self.stats.deltas += 1
            if state.min_valid + state.max_valid < losses:
                self.stats.support_losses += 1

    def invalidate_targets(self, targets: list[DeltaTarget]) -> None:
        """Drop the captured states (the old value could not be known)."""
        for region, state in targets:
            entry = self._states.get(region)
            if entry is not None and entry.state is state:
                self._drop_entry(region, entry)
                self.stats.invalidations += 1

    def apply_edit(self, address: CellAddress, old: object, new: object) -> None:
        """One-shot delta for a change whose old value is already known."""
        targets = self.targets_for(address)
        if targets:
            self.apply_delta(targets, old, new)

    def drop_formula(self, address: CellAddress) -> None:
        """Release ``address``'s subscriptions (its registration ended).

        Fired by the dependency graph's ``on_unregister`` hook, so states
        stay refcounted against exactly the formulas the graph still
        routes deltas for.  A shared state survives as long as any other
        subscriber remains; only the *last* unsubscribe drops it.
        """
        regions = self._subscriptions.pop(address, None)
        if not regions:
            return
        for region in regions:
            entry = self._states.get(region)
            if entry is None:
                continue
            entry.subscribers.discard(address)
            if not entry.subscribers:
                del self._states[region]
                self.stats.invalidations += 1

    def invalidate_region(self, region: RangeRef) -> None:
        """Drop only the states whose range overlaps ``region``.

        The scoped fallback for ``link_table``: the linked region's
        content changed wholesale, but aggregates over the rest of the
        sheet did not read it and keep their running state.
        """
        doomed = [held for held in self._states if held.overlaps(region)]
        for held in doomed:
            self._drop_entry(held, self._states[held])
            self.stats.invalidations += 1

    def apply_structural_edit(self, edit: StructuralEdit) -> None:
        """Splice the states across a row/column insert or delete.

        Uses the same ``StructuralEdit`` arithmetic the dependency graph
        re-keys registrations with, so states and registrations stay in
        lock-step.  A range the edit leaves untouched or purely translates
        keeps its state at the remapped key; an insert *inside* a range
        keeps it too (the inserted lines are blank — a ``None``
        contribution is a no-op).  Only ranges that actually lose content
        are dropped: overlap with deleted lines, or cells clamped off the
        sheet edge by an insert.  Subscribers are remapped through the
        same mapping; a state whose every subscriber was deleted goes with
        them.
        """
        if not self._states:
            self._interest.clear()
            return
        spliced: dict[RangeRef, _SharedState] = {}
        for region, entry in self._states.items():
            mapped = self._splice_region(edit, region)
            if mapped is None:
                self.stats.invalidations += 1
                continue
            subscribers = {
                moved for moved in (
                    edit.map_address(address) for address in entry.subscribers
                ) if moved is not None
            }
            if not subscribers:
                self.stats.invalidations += 1
                continue
            survivor = spliced.get(mapped)
            if survivor is None:
                entry.subscribers = subscribers
                spliced[mapped] = entry
            else:
                # Two pre-edit ranges collapsing onto one key cannot happen
                # for surviving (untouched/translated/expanded) spans, but
                # merge defensively rather than lose a subscriber set.
                survivor.subscribers |= subscribers
            self.stats.splices += 1
        self._states = spliced
        self._subscriptions = {}
        for region, entry in spliced.items():
            for address in entry.subscribers:
                self._subscriptions.setdefault(address, set()).add(region)
        self._interest.clear()

    @staticmethod
    def _splice_region(edit: StructuralEdit, region: RangeRef) -> RangeRef | None:
        """The post-edit key for ``region``, or ``None`` when content is lost."""
        mapped = edit.map_range(region)
        if mapped is None:
            return None
        if edit.axis == "row":
            first, last = region.top, region.bottom
            new_first, new_last = mapped.top, mapped.bottom
        else:
            first, last = region.left, region.right
            new_first, new_last = mapped.left, mapped.right
        size = last - first + 1
        if edit.kind == "insert":
            if last <= edit.line:
                return mapped  # entirely above/left of the insert: untouched
            if first > edit.line:
                # Pure translation; a clamp at the sheet edge means stored
                # cells were pushed off — content lost.
                translated = (new_first == first + edit.count
                              and new_last - new_first + 1 == size)
                return mapped if translated else None
            # Insert inside the range: it expands by ``count`` blank lines
            # (a no-op contribution) unless clamping swallowed content.
            return mapped if new_last - new_first + 1 == size + edit.count else None
        # Delete: survivors are the untouched (entirely before the deleted
        # span) and the purely translated (entirely after it); any overlap
        # means contributions left the range with values unknown.
        deleted_last = edit.line + edit.count - 1
        if last < edit.line or first > deleted_last:
            return mapped
        return None

    def invalidate_all(self) -> None:
        """Clear the whole store (abort past a commit point, recovery, ...)."""
        if self._states:
            self._states.clear()
            self._subscriptions.clear()
            self.stats.full_invalidations += 1
        self._interest.clear()

    def _drop_entry(self, region: RangeRef, entry: _SharedState) -> None:
        del self._states[region]
        for address in entry.subscribers:
            regions = self._subscriptions.get(address)
            if regions is not None:
                regions.discard(region)
                if not regions:
                    del self._subscriptions[address]

    # ------------------------------------------------------------------ #
    # savepoint snapshot / restore
    # ------------------------------------------------------------------ #
    @staticmethod
    def _copy_state(state: RangeAggregateState) -> RangeAggregateState:
        clone = RangeAggregateState()
        for slot in RangeAggregateState.__slots__:
            setattr(clone, slot, getattr(state, slot))
        return clone

    def snapshot_states(
        self,
    ) -> dict[RangeRef, tuple[RangeAggregateState, set[CellAddress]]]:
        """Deep-copy every running state (savepoint boundary capture).

        States are plain numeric components, so the copy is cheap relative
        to the range reads that built them.  The snapshot is independent of
        the live store: later deltas and subscriptions do not leak into
        it, and it can be restored more than once.
        """
        return {
            region: (self._copy_state(entry.state), set(entry.subscribers))
            for region, entry in self._states.items()
        }

    def restore_states(
        self,
        snapshot: dict[RangeRef, tuple[RangeAggregateState, set[CellAddress]]],
    ) -> None:
        """Replace the live states with copies of a captured snapshot.

        Only sound when no cell value was *committed* between capture and
        restore (the engine guards with its commit epoch and falls back to
        :meth:`invalidate_all` otherwise): buffered writes that the rollback
        also retracts are exactly what the snapshot predates.
        """
        self._states = {
            region: _SharedState(self._copy_state(state), set(subscribers))
            for region, (state, subscribers) in snapshot.items()
        }
        self._subscriptions = {}
        for region, entry in self._states.items():
            for address in entry.subscribers:
                self._subscriptions.setdefault(address, set()).add(region)
