"""Incremental (delta-maintained) aggregate state for range formulas.

The classic incremental-view-maintenance move applied to spreadsheet
formulas: a decomposable aggregate over a range — ``SUM``, ``COUNT``,
``COUNTA``, ``AVERAGE``, and (with an invalidation fallback) ``MIN`` /
``MAX`` — keeps *running state* so that a point edit inside a 100k-cell
range recomputes its dependents in O(Δ) from the edit's old→new value
delta instead of re-reading the whole rectangle.

Architecture
------------
* :class:`RangeAggregateState` holds the running components for one
  registered range of one formula cell: exact integer sum, numeric count,
  filled count, and min/max with multiplicity.  ``add``/``remove`` apply
  one value's contribution; ``supports(name)`` reports whether a component
  can still serve a given function exactly.
* :class:`AggregateStore` owns every state, keyed by the dependency
  graph's range registrations (formula cell → range).  The engine routes
  every committed cell-value change through :meth:`AggregateStore.apply_edit`
  (or the two-phase ``targets_for`` / ``apply_delta`` pair), using the
  graph's interval index to find the affected states in O(log n); the
  evaluator serves decomposable calls from the states and (re)builds them
  from one bulk range read when missing.

Exactness contract
------------------
The delta path must agree **bit-for-bit** with a full range read, because
the randomized equivalence harness compares engines cell-for-cell.  Sums
are therefore tracked as exact Python integers, and a contribution only
qualifies when it is an integral number with magnitude at most
:data:`EXACT_VALUE_LIMIT` (2**28): with ranges capped at
``MAX_RANGE_CELLS`` (10**7 < 2**24) cells, every partial sum the full-read
path computes stays below 2**52, where float addition is exact.  Any
other numeric (a non-integral float, a huge integer, a NaN) is an
*inexact contribution*, tracked by multiplicity: while the range holds at
least one, ``SUM``/``AVERAGE`` fall back to the full range read
(``COUNT``/``COUNTA`` keep working, and so do ``MIN``/``MAX`` unless the
value is *unordered* — NaN, or an integer beyond float range — which
poisons the ordering components too), and they recover the O(Δ) path the
moment the last inexact value is edited out.
``MIN``/``MAX`` track the extremum *with multiplicity* in
the float domain (exactly what the full path compares); removing the last
copy of the extremum is a *support loss* — the state cannot know the
runner-up — and invalidates that component until the next full read
rebuilds it.

Fallback matrix (who invalidates what)
--------------------------------------
* unknown old value (first write to an uncached cell mid-batch) — the
  affected states are dropped;
* structural edits, batch aborts, ``link_table``, ``optimize_storage`` —
  the engine clears the whole store (coordinate space or content changed
  wholesale);
* formula (re)registration — the engine drops the formula's own states;
* ``#REF!`` / oversized ranges — evaluation raises before any state is
  consulted or built;
* MIN/MAX support loss, inexact sums — the single component degrades, the
  others keep serving;
* ranges smaller than :attr:`AggregateStore.min_state_area` never get a
  state at all — a tiny materialisation costs what one delta costs, and a
  hot small range read by thousands of formulas must not tax the
  edit-acknowledgment path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import FormulaEvaluationError
from repro.formula.functions import RangeValue, _normalized_number
from repro.grid.address import CellAddress
from repro.grid.range import RangeRef

#: The aggregate functions the delta path can serve.
DECOMPOSABLE_AGGREGATES = frozenset({"SUM", "COUNT", "COUNTA", "AVERAGE", "MIN", "MAX"})

#: Largest integral magnitude a contribution may have and keep the exact
#: integer sum guaranteed to match the full-read float sum (see module
#: docstring for the 2**28 * 2**24 < 2**53 argument).
EXACT_VALUE_LIMIT = 1 << 28

#: Ranges smaller than this many cells are not worth a running state: a
#: full read of a few dozen cells costs about as much as one delta, while
#: every state makes every edit inside its range pay an eager delta — on a
#: hot small range read by thousands of formulas that tax lands on the
#: edit-acknowledgment path the async scheduler exists to protect.  Tests
#: lower :attr:`AggregateStore.min_state_area` to exercise the machinery
#: on small grids.
DEFAULT_MIN_STATE_AREA = 256


@dataclass
class AggregateStats:
    """Instrumentation counters (exposed for tests and benchmarks)."""

    hits: int = 0              # aggregate calls served entirely from state
    builds: int = 0            # states (re)built from a full range read
    deltas: int = 0            # point deltas applied to a state
    invalidations: int = 0     # states dropped (unknown old value, re-registration)
    support_losses: int = 0    # MIN/MAX extremum removals degrading a component
    fallbacks: int = 0         # calls that materialized despite a fresh state
    full_invalidations: int = 0  # store-wide clears (structural edits, aborts, ...)

    def reset(self) -> None:
        self.hits = 0
        self.builds = 0
        self.deltas = 0
        self.invalidations = 0
        self.support_losses = 0
        self.fallbacks = 0
        self.full_invalidations = 0


class RangeAggregateState:
    """Running decomposable components over one registered range."""

    __slots__ = (
        "total", "count", "filled", "inexact", "poisoned",
        "min_value", "min_count", "min_valid",
        "max_value", "max_count", "max_valid",
    )

    def __init__(self) -> None:
        self.total = 0          # exact integer sum of the exact contributions
        self.count = 0          # numeric (non-bool) values
        self.filled = 0         # non-blank values
        #: Number of contributions currently in the range that cannot be
        #: summed exactly (non-integral floats, huge magnitudes, NaN).
        #: Tracked by multiplicity — like the min/max support — so SUM and
        #: AVERAGE recover as soon as the last inexact value is edited out.
        self.inexact = 0
        #: Number of unordered contributions (NaN, or integers beyond
        #: float range) currently in the range.  While positive, the
        #: min/max components are content-poisoned: a rebuild cannot
        #: repair them, unlike an extremum support loss.
        self.poisoned = 0
        self.min_value = math.inf
        self.min_count = 0      # multiplicity of the minimum (float equality)
        self.min_valid = True
        self.max_value = -math.inf
        self.max_count = 0
        self.max_valid = True

    @property
    def sum_exact(self) -> bool:
        """Whether ``total`` faithfully mirrors the full-read float sum."""
        return self.inexact == 0

    @classmethod
    def from_range_value(cls, values: RangeValue) -> "RangeAggregateState":
        state = cls()
        for value in values.flatten():
            state.add(value)
        return state

    # ------------------------------------------------------------------ #
    def rebuild_restores(self, name: str) -> bool:
        """Whether a full-read rebuild could repair support for ``name``
        with the range content unchanged.

        An extremum support loss is repairable (the re-read finds the new
        extremum); content-driven degradation — NaN still in the range
        for MIN/MAX, any inexact contribution for SUM/AVERAGE — is not,
        and rebuilding for it would add a futile O(area) state pass to
        every evaluation's unavoidable full read.
        """
        if name in ("MIN", "MAX"):
            return self.poisoned == 0
        return False

    def supports(self, name: str) -> bool:
        """Whether this state can serve ``name`` exactly right now."""
        if name in ("SUM", "AVERAGE"):
            return self.sum_exact
        if name == "MIN":
            return self.min_valid
        if name == "MAX":
            return self.max_valid
        return True  # COUNT / COUNTA are always exact

    @staticmethod
    def _as_float(value) -> float:
        """``float(value)`` with overflow mapped to the NaN poison path.

        An integer beyond float range would raise ``OverflowError`` halfway
        through a delta, leaving the counters inconsistent; treating it as
        NaN keeps the state consistent and routes every order/sum component
        to the full-read fallback (which raises exactly like a from-scratch
        evaluation would).
        """
        try:
            return float(value)
        except OverflowError:
            return math.nan

    def add(self, value: object) -> None:
        """Fold one cell value's contribution in."""
        if value is None:
            return
        self.filled += 1
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return  # text and booleans carry no numeric contribution in ranges
        self.count += 1
        number = self._as_float(value)
        if number != number:  # NaN poisons ordering and summation alike
            self.inexact += 1
            self.poisoned += 1
            self.min_valid = False
            self.max_valid = False
            return
        if number.is_integer() and abs(number) <= EXACT_VALUE_LIMIT:
            self.total += int(number)
        else:
            self.inexact += 1
        if self.min_valid:
            if self.count == 1 or number < self.min_value:
                self.min_value = number
                self.min_count = 1
            elif number == self.min_value:
                self.min_count += 1
        if self.max_valid:
            if self.count == 1 or number > self.max_value:
                self.max_value = number
                self.max_count = 1
            elif number == self.max_value:
                self.max_count += 1

    def remove(self, value: object) -> None:
        """Retract one cell value's contribution."""
        if value is None:
            return
        self.filled -= 1
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        self.count -= 1
        number = self._as_float(value)
        if number != number:
            # Its inexactness and poison leave with it; the min/max flags
            # stay down until a rebuild (or the reset below when the
            # numeric support empties).
            self.inexact -= 1
            self.poisoned -= 1
            if self.count == 0:
                self.min_value = math.inf
                self.min_count = 0
                self.min_valid = True
                self.max_value = -math.inf
                self.max_count = 0
                self.max_valid = True
            return
        if number.is_integer() and abs(number) <= EXACT_VALUE_LIMIT:
            self.total -= int(number)
        else:
            self.inexact -= 1
        if self.count == 0:
            # Empty support is fully known again: MIN/MAX of no numbers is 0.
            self.min_value = math.inf
            self.min_count = 0
            self.min_valid = True
            self.max_value = -math.inf
            self.max_count = 0
            self.max_valid = True
            return
        if self.min_valid and number == self.min_value:
            self.min_count -= 1
            if self.min_count == 0:
                self.min_valid = False  # the runner-up is unknown
        if self.max_valid and number == self.max_value:
            self.max_count -= 1
            if self.max_count == 0:
                self.max_valid = False


def combine_aggregate(name: str, states: list[RangeAggregateState]) -> object:
    """The aggregate value over one or more (supported) states.

    Reproduces the full-read semantics exactly, including the ``#DIV/0!``
    of ``AVERAGE`` over no numbers and the Excel-style 0 for ``MIN`` /
    ``MAX`` of no numbers.
    """
    if name == "SUM":
        return sum(state.total for state in states)
    if name == "COUNT":
        return sum(state.count for state in states)
    if name == "COUNTA":
        return sum(state.filled for state in states)
    if name == "AVERAGE":
        count = sum(state.count for state in states)
        if not count:
            raise FormulaEvaluationError("#DIV/0!", "AVERAGE of no numbers")
        return _normalized_number(sum(state.total for state in states) / count)
    if name == "MIN":
        lows = [state.min_value for state in states if state.count]
        return _normalized_number(min(lows)) if lows else 0
    if name == "MAX":
        highs = [state.max_value for state in states if state.count]
        return _normalized_number(max(highs)) if highs else 0
    raise FormulaEvaluationError("#VALUE!", f"{name} is not decomposable")


#: A (formula cell, range, state) triple the engine threads from
#: ``targets_for`` (pre-edit) to ``apply_delta`` (post-edit).
DeltaTarget = tuple[CellAddress, RangeRef, RangeAggregateState]


class AggregateStore:
    """Every running aggregate state, keyed by formula cell and range.

    The store is deliberately passive: the engine tells it about every
    committed cell-value change (``apply_edit`` or the two-phase
    ``targets_for``/``apply_delta``), about formulas whose registration
    changed (``drop_formula``), and about events that invalidate content
    wholesale (``invalidate_all``).  The evaluator asks it for states
    (``state_for``) and registers freshly built ones (``build``).

    Candidate lookup reuses the dependency graph's interval index: the
    formulas whose states *can* contain a changed coordinate are exactly
    the formulas registered as reading it, so one ``direct_dependents``
    stab bounds the work at O(log n + affected states).
    """

    def __init__(self, graph) -> None:
        self._graph = graph
        self._states: dict[CellAddress, dict[RangeRef, RangeAggregateState]] = {}
        self._enabled = True
        #: Smallest range area the evaluator keeps running state for.
        self.min_state_area = DEFAULT_MIN_STATE_AREA
        self.stats = AggregateStats()

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """Whether the delta path is active (disable for benchmarking)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if not value:
            # States stop receiving deltas while disabled; they would be
            # stale (and wrong) if served after re-enabling.
            self._states.clear()
        self._enabled = value

    @property
    def state_count(self) -> int:
        """Number of running states currently held."""
        return sum(len(per_formula) for per_formula in self._states.values())

    # ------------------------------------------------------------------ #
    # evaluator-side API
    # ------------------------------------------------------------------ #
    def state_for(self, address: CellAddress, region: RangeRef) -> RangeAggregateState | None:
        """The running state of ``address``'s registration of ``region``."""
        if not self._enabled:
            return None
        per_formula = self._states.get(address)
        return per_formula.get(region) if per_formula else None

    def build(self, address: CellAddress, region: RangeRef,
              values: RangeValue) -> RangeAggregateState:
        """(Re)build a state from one materialized range read.

        A range containing the owning formula's *own* cell (a self-cycle
        the topological order tolerates rather than raising on) is never
        cached: the formula's own commit could not be folded back into its
        state coherently, so a cached state would drift from the full-read
        baseline.  The state is still returned for this one evaluation —
        the caller already paid for the read — but every future evaluation
        re-reads, exactly like the baseline engine.
        """
        state = RangeAggregateState.from_range_value(values)
        if self._enabled and not region.contains_coordinates(address.row, address.column):
            self._states.setdefault(address, {})[region] = state
            self.stats.builds += 1
        return state

    # ------------------------------------------------------------------ #
    # engine-side API
    # ------------------------------------------------------------------ #
    def targets_for(self, address: CellAddress) -> list[DeltaTarget]:
        """The states whose range contains ``address`` (pre-edit phase).

        One interval-index stab plus a containment filter.  The changed
        cell's own states are excluded defensively — a state over a range
        containing its own formula cell is never cached (see
        :meth:`build`), so none should exist to begin with.
        """
        if not self._enabled or not self._states:
            return []
        targets: list[DeltaTarget] = []
        for formula in self._graph.direct_dependents(address):
            if formula == address:
                continue
            per_formula = self._states.get(formula)
            if not per_formula:
                continue
            for region, state in per_formula.items():
                if region.contains_coordinates(address.row, address.column):
                    targets.append((formula, region, state))
        return targets

    def apply_delta(self, targets: list[DeltaTarget], old: object, new: object) -> None:
        """Fold an old→new value change into the captured targets."""
        if old is new or (type(old) is type(new) and old == new):
            return
        for _formula, _region, state in targets:
            losses = state.min_valid + state.max_valid
            state.remove(old)
            state.add(new)
            self.stats.deltas += 1
            if state.min_valid + state.max_valid < losses:
                self.stats.support_losses += 1

    def invalidate_targets(self, targets: list[DeltaTarget]) -> None:
        """Drop the captured states (the old value could not be known)."""
        for formula, region, _state in targets:
            per_formula = self._states.get(formula)
            if per_formula is not None and per_formula.pop(region, None) is not None:
                self.stats.invalidations += 1
                if not per_formula:
                    del self._states[formula]

    def apply_edit(self, address: CellAddress, old: object, new: object) -> None:
        """One-shot delta for a change whose old value is already known."""
        targets = self.targets_for(address)
        if targets:
            self.apply_delta(targets, old, new)

    def drop_formula(self, address: CellAddress) -> None:
        """Forget a formula's states (its registration is being replaced).

        Must run on every (un)registration: states stay fresh only while
        the graph routes deltas to them, which requires the formula's range
        registrations and its states to agree.
        """
        dropped = self._states.pop(address, None)
        if dropped:
            self.stats.invalidations += len(dropped)

    def invalidate_all(self) -> None:
        """Clear the whole store (structural edit, abort, relayout, ...)."""
        if self._states:
            self._states.clear()
            self.stats.full_invalidations += 1

    # ------------------------------------------------------------------ #
    # savepoint snapshot / restore
    # ------------------------------------------------------------------ #
    @staticmethod
    def _copy_state(state: RangeAggregateState) -> RangeAggregateState:
        clone = RangeAggregateState()
        for slot in RangeAggregateState.__slots__:
            setattr(clone, slot, getattr(state, slot))
        return clone

    def snapshot_states(self) -> dict[CellAddress, dict[RangeRef, RangeAggregateState]]:
        """Deep-copy every running state (savepoint boundary capture).

        States are plain numeric components, so the copy is cheap relative
        to the range reads that built them.  The snapshot is independent of
        the live store: later deltas do not leak into it, and it can be
        restored more than once.
        """
        return {
            formula: {region: self._copy_state(state) for region, state in per_formula.items()}
            for formula, per_formula in self._states.items()
        }

    def restore_states(
        self, snapshot: dict[CellAddress, dict[RangeRef, RangeAggregateState]]
    ) -> None:
        """Replace the live states with copies of a captured snapshot.

        Only sound when no cell value was *committed* between capture and
        restore (the engine guards with its commit epoch and falls back to
        :meth:`invalidate_all` otherwise): buffered writes that the rollback
        also retracts are exactly what the snapshot predates.
        """
        self._states = {
            formula: {region: self._copy_state(state) for region, state in per_formula.items()}
            for formula, per_formula in snapshot.items()
        }
