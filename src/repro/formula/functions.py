"""Built-in spreadsheet function library.

Implements the functions that dominate the paper's corpus study (Figure 5):
arithmetic helpers, SUM/AVERAGE/COUNT/MIN/MAX, IF/AND/OR/NOT/ISBLANK,
VLOOKUP/HLOOKUP/SEARCH, and the numeric family LOG/LN/ROUND/FLOOR/CEILING.

Functions receive *evaluated* arguments.  Range arguments arrive as
:class:`RangeValue` — a lazy 2-D grid of cell values — so aggregate functions
can iterate them while scalar contexts can reject them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import FormulaEvaluationError
from repro.grid.cell import CellValue


@dataclass(frozen=True)
class RangeValue:
    """A rectangular block of evaluated cell values (row-major)."""

    values: tuple[tuple[CellValue, ...], ...]

    @property
    def rows(self) -> int:
        """Number of rows in the block."""
        return len(self.values)

    @property
    def columns(self) -> int:
        """Number of columns in the block (0 when empty)."""
        return len(self.values[0]) if self.values else 0

    def flatten(self) -> Iterator[CellValue]:
        """Iterate all values row-major, including blanks."""
        for row in self.values:
            yield from row

    def column(self, index: int) -> list[CellValue]:
        """Return the 1-based ``index``-th column."""
        if index < 1 or index > self.columns:
            raise FormulaEvaluationError("#REF!", f"column index {index} out of range")
        return [row[index - 1] for row in self.values]


ArgValue = CellValue | RangeValue
FunctionImpl = Callable[..., CellValue]

#: Global registry of spreadsheet functions, keyed by upper-case name.
FUNCTION_REGISTRY: dict[str, FunctionImpl] = {}


def register_function(name: str) -> Callable[[FunctionImpl], FunctionImpl]:
    """Decorator registering ``name`` in :data:`FUNCTION_REGISTRY`."""

    def decorator(func: FunctionImpl) -> FunctionImpl:
        FUNCTION_REGISTRY[name.upper()] = func
        return func

    return decorator


# ---------------------------------------------------------------------- #
# coercion helpers
# ---------------------------------------------------------------------- #
def iter_numbers(arguments: Iterable[ArgValue]) -> Iterator[float]:
    """Yield the numeric content of scalar and range arguments, skipping blanks/text."""
    for argument in arguments:
        if isinstance(argument, RangeValue):
            for value in argument.flatten():
                if isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)):
                    yield float(value)
        elif isinstance(argument, bool):
            yield 1.0 if argument else 0.0
        elif isinstance(argument, (int, float)):
            yield float(argument)
        elif isinstance(argument, str):
            try:
                yield float(argument)
            except ValueError as exc:
                raise FormulaEvaluationError("#VALUE!", f"not a number: {argument!r}") from exc
        # None (blank) contributes nothing


def to_number(value: ArgValue) -> float:
    """Coerce a scalar argument to a float; blanks count as 0."""
    if isinstance(value, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "expected a scalar, got a range")
    if value is None:
        return 0.0
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(value)
    except ValueError as exc:
        raise FormulaEvaluationError("#VALUE!", f"not a number: {value!r}") from exc


def to_boolean(value: ArgValue) -> bool:
    """Coerce a scalar argument to a boolean."""
    if isinstance(value, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "expected a scalar, got a range")
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        upper = value.upper()
        if upper == "TRUE":
            return True
        if upper == "FALSE":
            return False
    raise FormulaEvaluationError("#VALUE!", f"not a boolean: {value!r}")


def to_text(value: ArgValue) -> str:
    """Coerce a scalar argument to text the way a sheet renders it."""
    if isinstance(value, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "expected a scalar, got a range")
    if value is None:
        return ""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _normalized_number(value: float) -> CellValue:
    """Return ints for integral results to keep sheets tidy."""
    if math.isfinite(value) and float(value).is_integer():
        return int(value)
    return value


# ---------------------------------------------------------------------- #
# aggregates
# ---------------------------------------------------------------------- #
@register_function("SUM")
def fn_sum(*arguments: ArgValue) -> CellValue:
    """SUM of all numeric content."""
    return _normalized_number(sum(iter_numbers(arguments)))


@register_function("AVERAGE")
def fn_average(*arguments: ArgValue) -> CellValue:
    """Arithmetic mean of numeric content; #DIV/0! when there is none."""
    numbers = list(iter_numbers(arguments))
    if not numbers:
        raise FormulaEvaluationError("#DIV/0!", "AVERAGE of no numbers")
    return _normalized_number(sum(numbers) / len(numbers))


@register_function("COUNT")
def fn_count(*arguments: ArgValue) -> CellValue:
    """Count of numeric values."""
    count = 0
    for argument in arguments:
        if isinstance(argument, RangeValue):
            count += sum(
                1 for value in argument.flatten()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            )
        elif isinstance(argument, (int, float)) and not isinstance(argument, bool):
            count += 1
    return count


@register_function("COUNTA")
def fn_counta(*arguments: ArgValue) -> CellValue:
    """Count of non-blank values."""
    count = 0
    for argument in arguments:
        if isinstance(argument, RangeValue):
            count += sum(1 for value in argument.flatten() if value is not None)
        elif argument is not None:
            count += 1
    return count


@register_function("MIN")
def fn_min(*arguments: ArgValue) -> CellValue:
    """Minimum numeric value (0 when there are none, as in Excel)."""
    numbers = list(iter_numbers(arguments))
    return _normalized_number(min(numbers)) if numbers else 0


@register_function("MAX")
def fn_max(*arguments: ArgValue) -> CellValue:
    """Maximum numeric value (0 when there are none, as in Excel)."""
    numbers = list(iter_numbers(arguments))
    return _normalized_number(max(numbers)) if numbers else 0


@register_function("PRODUCT")
def fn_product(*arguments: ArgValue) -> CellValue:
    """Product of numeric content."""
    result = 1.0
    seen = False
    for number in iter_numbers(arguments):
        result *= number
        seen = True
    return _normalized_number(result) if seen else 0


@register_function("MEDIAN")
def fn_median(*arguments: ArgValue) -> CellValue:
    """Median of numeric content."""
    numbers = sorted(iter_numbers(arguments))
    if not numbers:
        raise FormulaEvaluationError("#NUM!", "MEDIAN of no numbers")
    middle = len(numbers) // 2
    if len(numbers) % 2:
        return _normalized_number(numbers[middle])
    return _normalized_number((numbers[middle - 1] + numbers[middle]) / 2)


@register_function("STDEV")
def fn_stdev(*arguments: ArgValue) -> CellValue:
    """Sample standard deviation of numeric content."""
    numbers = list(iter_numbers(arguments))
    if len(numbers) < 2:
        raise FormulaEvaluationError("#DIV/0!", "STDEV needs at least two numbers")
    mean = sum(numbers) / len(numbers)
    variance = sum((value - mean) ** 2 for value in numbers) / (len(numbers) - 1)
    return math.sqrt(variance)


@register_function("SUMIF")
def fn_sumif(criteria_range: ArgValue, criteria: ArgValue, sum_range: ArgValue = None) -> CellValue:
    """SUM of values whose criteria-range counterpart satisfies ``criteria``."""
    if not isinstance(criteria_range, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "SUMIF expects a range")
    source = sum_range if isinstance(sum_range, RangeValue) else criteria_range
    matcher = _criteria_matcher(criteria)
    total = 0.0
    flat_criteria = list(criteria_range.flatten())
    flat_source = list(source.flatten())
    for index, candidate in enumerate(flat_criteria):
        if index < len(flat_source) and matcher(candidate):
            value = flat_source[index]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                total += float(value)
    return _normalized_number(total)


@register_function("COUNTIF")
def fn_countif(criteria_range: ArgValue, criteria: ArgValue) -> CellValue:
    """Count of cells in the range satisfying ``criteria``."""
    if not isinstance(criteria_range, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "COUNTIF expects a range")
    matcher = _criteria_matcher(criteria)
    return sum(1 for value in criteria_range.flatten() if matcher(value))


def _criteria_matcher(criteria: ArgValue) -> Callable[[CellValue], bool]:
    """Build a predicate from an Excel-style criteria argument (e.g. ``">=5"``)."""
    if isinstance(criteria, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "criteria must be a scalar")
    if isinstance(criteria, str):
        for operator in (">=", "<=", "<>", ">", "<", "="):
            if criteria.startswith(operator):
                target_text = criteria[len(operator):]
                try:
                    target: CellValue = float(target_text)
                except ValueError:
                    target = target_text
                return _comparison_predicate(operator, target)
        return lambda value: to_text(value).lower() == criteria.lower() if value is not None else False
    return lambda value: value == criteria


def _comparison_predicate(operator: str, target: CellValue) -> Callable[[CellValue], bool]:
    def predicate(value: CellValue) -> bool:
        if value is None:
            return False
        if isinstance(target, float):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False
            left: float | str = float(value)
        else:
            left = to_text(value).lower()
            target_cmp = str(target).lower()
            return _apply_comparison(operator, left, target_cmp)
        return _apply_comparison(operator, left, target)

    return predicate


def _apply_comparison(operator: str, left: float | str, right: float | str) -> bool:
    if operator == "=":
        return left == right
    if operator == "<>":
        return left != right
    if operator == ">":
        return left > right       # type: ignore[operator]
    if operator == "<":
        return left < right       # type: ignore[operator]
    if operator == ">=":
        return left >= right      # type: ignore[operator]
    return left <= right          # type: ignore[operator]


# ---------------------------------------------------------------------- #
# logical
# ---------------------------------------------------------------------- #
@register_function("IF")
def fn_if(condition: ArgValue, if_true: ArgValue = True, if_false: ArgValue = False) -> CellValue:
    """IF(condition, then, else)."""
    result = if_true if to_boolean(condition) else if_false
    if isinstance(result, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "IF branches must be scalars")
    return result


@register_function("AND")
def fn_and(*arguments: ArgValue) -> CellValue:
    """Logical AND over scalars and range contents."""
    return all(to_boolean(value) for value in _iter_scalars(arguments))


@register_function("OR")
def fn_or(*arguments: ArgValue) -> CellValue:
    """Logical OR over scalars and range contents."""
    return any(to_boolean(value) for value in _iter_scalars(arguments))


@register_function("NOT")
def fn_not(argument: ArgValue) -> CellValue:
    """Logical negation."""
    return not to_boolean(argument)


@register_function("ISBLANK")
def fn_isblank(argument: ArgValue) -> CellValue:
    """Whether the argument is a blank cell."""
    if isinstance(argument, RangeValue):
        return all(value is None for value in argument.flatten())
    return argument is None


@register_function("ISNUMBER")
def fn_isnumber(argument: ArgValue) -> CellValue:
    """Whether the argument is numeric."""
    return isinstance(argument, (int, float)) and not isinstance(argument, bool)


@register_function("IFERROR")
def fn_iferror(value: ArgValue, fallback: ArgValue = None) -> CellValue:
    """Return ``value`` unless it is an error sentinel string, else ``fallback``.

    The evaluator converts trapped evaluation errors into their error-code
    strings before calling IFERROR, so this simply checks for that shape.
    """
    if isinstance(value, str) and value.startswith("#") and value.endswith(("!", "?")):
        if isinstance(fallback, RangeValue):
            raise FormulaEvaluationError("#VALUE!", "IFERROR fallback must be a scalar")
        return fallback
    if isinstance(value, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "IFERROR value must be a scalar")
    return value


def _iter_scalars(arguments: Iterable[ArgValue]) -> Iterator[CellValue]:
    for argument in arguments:
        if isinstance(argument, RangeValue):
            for value in argument.flatten():
                if value is not None:
                    yield value
        else:
            yield argument


# ---------------------------------------------------------------------- #
# numeric
# ---------------------------------------------------------------------- #
@register_function("ABS")
def fn_abs(value: ArgValue) -> CellValue:
    """Absolute value."""
    return _normalized_number(abs(to_number(value)))


@register_function("SQRT")
def fn_sqrt(value: ArgValue) -> CellValue:
    """Square root; #NUM! for negatives."""
    number = to_number(value)
    if number < 0:
        raise FormulaEvaluationError("#NUM!", "SQRT of a negative number")
    return _normalized_number(math.sqrt(number))


@register_function("LN")
def fn_ln(value: ArgValue) -> CellValue:
    """Natural logarithm; #NUM! for non-positive input."""
    number = to_number(value)
    if number <= 0:
        raise FormulaEvaluationError("#NUM!", "LN of a non-positive number")
    return math.log(number)


@register_function("LOG")
def fn_log(value: ArgValue, base: ArgValue = 10) -> CellValue:
    """Logarithm in the given base (default 10)."""
    number = to_number(value)
    base_number = to_number(base)
    if number <= 0 or base_number <= 0 or base_number == 1:
        raise FormulaEvaluationError("#NUM!", "invalid LOG arguments")
    return math.log(number, base_number)


@register_function("EXP")
def fn_exp(value: ArgValue) -> CellValue:
    """e raised to the argument."""
    return math.exp(to_number(value))


@register_function("ROUND")
def fn_round(value: ArgValue, digits: ArgValue = 0) -> CellValue:
    """Round to ``digits`` decimal places (half away from zero, like Excel)."""
    number = to_number(value)
    places = int(to_number(digits))
    factor = 10 ** places
    scaled = number * factor
    rounded = math.floor(scaled + 0.5) if scaled >= 0 else math.ceil(scaled - 0.5)
    return _normalized_number(rounded / factor)


@register_function("FLOOR")
def fn_floor(value: ArgValue, significance: ArgValue = 1) -> CellValue:
    """Round down to the nearest multiple of ``significance``."""
    number = to_number(value)
    step = to_number(significance)
    if step == 0:
        raise FormulaEvaluationError("#DIV/0!", "FLOOR significance of zero")
    return _normalized_number(math.floor(number / step) * step)


@register_function("CEILING")
def fn_ceiling(value: ArgValue, significance: ArgValue = 1) -> CellValue:
    """Round up to the nearest multiple of ``significance``."""
    number = to_number(value)
    step = to_number(significance)
    if step == 0:
        raise FormulaEvaluationError("#DIV/0!", "CEILING significance of zero")
    return _normalized_number(math.ceil(number / step) * step)


@register_function("MOD")
def fn_mod(value: ArgValue, divisor: ArgValue) -> CellValue:
    """Remainder after division (sign follows the divisor, like Excel)."""
    denominator = to_number(divisor)
    if denominator == 0:
        raise FormulaEvaluationError("#DIV/0!", "MOD by zero")
    return _normalized_number(math.fmod(to_number(value), denominator)
                              if (to_number(value) < 0) == (denominator < 0)
                              else to_number(value) % denominator)


@register_function("POWER")
def fn_power(base: ArgValue, exponent: ArgValue) -> CellValue:
    """``base`` raised to ``exponent``."""
    return _normalized_number(to_number(base) ** to_number(exponent))


# ---------------------------------------------------------------------- #
# text
# ---------------------------------------------------------------------- #
@register_function("CONCATENATE")
def fn_concatenate(*arguments: ArgValue) -> CellValue:
    """Concatenate the text rendering of every scalar argument."""
    return "".join(to_text(value) for value in _iter_scalars(arguments))


@register_function("LEN")
def fn_len(value: ArgValue) -> CellValue:
    """Length of the text rendering."""
    return len(to_text(value))


@register_function("UPPER")
def fn_upper(value: ArgValue) -> CellValue:
    """Upper-cased text."""
    return to_text(value).upper()


@register_function("LOWER")
def fn_lower(value: ArgValue) -> CellValue:
    """Lower-cased text."""
    return to_text(value).lower()


@register_function("TRIM")
def fn_trim(value: ArgValue) -> CellValue:
    """Whitespace-trimmed text."""
    return to_text(value).strip()


@register_function("LEFT")
def fn_left(value: ArgValue, count: ArgValue = 1) -> CellValue:
    """The first ``count`` characters."""
    return to_text(value)[: int(to_number(count))]


@register_function("RIGHT")
def fn_right(value: ArgValue, count: ArgValue = 1) -> CellValue:
    """The last ``count`` characters."""
    amount = int(to_number(count))
    text = to_text(value)
    return text[-amount:] if amount > 0 else ""


@register_function("MID")
def fn_mid(value: ArgValue, start: ArgValue, count: ArgValue) -> CellValue:
    """Substring starting at 1-based ``start`` with ``count`` characters."""
    begin = max(int(to_number(start)) - 1, 0)
    amount = int(to_number(count))
    return to_text(value)[begin: begin + amount]


@register_function("SEARCH")
def fn_search(needle: ArgValue, haystack: ArgValue, start: ArgValue = 1) -> CellValue:
    """1-based, case-insensitive position of ``needle`` in ``haystack``; #VALUE! when absent."""
    begin = max(int(to_number(start)) - 1, 0)
    position = to_text(haystack).lower().find(to_text(needle).lower(), begin)
    if position < 0:
        raise FormulaEvaluationError("#VALUE!", "SEARCH text not found")
    return position + 1


# ---------------------------------------------------------------------- #
# lookup
# ---------------------------------------------------------------------- #
@register_function("VLOOKUP")
def fn_vlookup(
    lookup_value: ArgValue,
    table: ArgValue,
    column_index: ArgValue,
    range_lookup: ArgValue = True,
) -> CellValue:
    """Vertical lookup: find ``lookup_value`` in the first column of ``table``.

    With ``range_lookup`` false an exact match is required; otherwise the
    largest first-column value <= the lookup value is used (the table is
    assumed sorted, as in Excel).
    """
    if not isinstance(table, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "VLOOKUP expects a range table")
    target_column = int(to_number(column_index))
    if target_column < 1 or target_column > table.columns:
        raise FormulaEvaluationError("#REF!", "VLOOKUP column index out of range")
    approximate = to_boolean(range_lookup) if range_lookup is not None else True
    first_column = table.column(1)
    row_index = _lookup_index(lookup_value, first_column, approximate)
    if row_index is None:
        raise FormulaEvaluationError("#N/A", "VLOOKUP value not found")
    return table.values[row_index][target_column - 1]


@register_function("HLOOKUP")
def fn_hlookup(
    lookup_value: ArgValue,
    table: ArgValue,
    row_index: ArgValue,
    range_lookup: ArgValue = True,
) -> CellValue:
    """Horizontal lookup: find ``lookup_value`` in the first row of ``table``."""
    if not isinstance(table, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "HLOOKUP expects a range table")
    target_row = int(to_number(row_index))
    if target_row < 1 or target_row > table.rows:
        raise FormulaEvaluationError("#REF!", "HLOOKUP row index out of range")
    approximate = to_boolean(range_lookup) if range_lookup is not None else True
    first_row = list(table.values[0])
    column_position = _lookup_index(lookup_value, first_row, approximate)
    if column_position is None:
        raise FormulaEvaluationError("#N/A", "HLOOKUP value not found")
    return table.values[target_row - 1][column_position]


@register_function("MATCH")
def fn_match(lookup_value: ArgValue, lookup_range: ArgValue, match_type: ArgValue = 1) -> CellValue:
    """1-based position of ``lookup_value`` in a single row or column range."""
    if not isinstance(lookup_range, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "MATCH expects a range")
    if lookup_range.rows == 1:
        candidates = list(lookup_range.values[0])
    elif lookup_range.columns == 1:
        candidates = lookup_range.column(1)
    else:
        raise FormulaEvaluationError("#N/A", "MATCH range must be one row or one column")
    approximate = int(to_number(match_type)) != 0
    index = _lookup_index(lookup_value, candidates, approximate)
    if index is None:
        raise FormulaEvaluationError("#N/A", "MATCH value not found")
    return index + 1


@register_function("INDEX")
def fn_index(table: ArgValue, row: ArgValue, column: ArgValue = 1) -> CellValue:
    """Value at (row, column) of a range (both 1-based)."""
    if not isinstance(table, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "INDEX expects a range")
    row_number = int(to_number(row))
    column_number = int(to_number(column))
    if not (1 <= row_number <= table.rows and 1 <= column_number <= table.columns):
        raise FormulaEvaluationError("#REF!", "INDEX out of range")
    return table.values[row_number - 1][column_number - 1]


def _lookup_index(
    lookup_value: ArgValue, candidates: Sequence[CellValue], approximate: bool
) -> int | None:
    """Shared lookup core for VLOOKUP/HLOOKUP/MATCH."""
    if isinstance(lookup_value, RangeValue):
        raise FormulaEvaluationError("#VALUE!", "lookup value must be a scalar")
    if not approximate:
        for index, candidate in enumerate(candidates):
            if _loose_equal(candidate, lookup_value):
                return index
        return None
    best: int | None = None
    for index, candidate in enumerate(candidates):
        if candidate is None:
            continue
        try:
            if _loose_compare(candidate, lookup_value) <= 0:
                best = index
            else:
                break
        except TypeError:
            continue
    return best


def _loose_equal(left: CellValue, right: CellValue) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def _loose_compare(left: CellValue, right: CellValue) -> int:
    if isinstance(left, str) and isinstance(right, str):
        left_key, right_key = left.lower(), right.lower()
    elif isinstance(left, (int, float)) and isinstance(right, (int, float)) \
            and not isinstance(left, bool) and not isinstance(right, bool):
        left_key, right_key = float(left), float(right)
    else:
        raise TypeError("incomparable values")
    if left_key < right_key:   # type: ignore[operator]
        return -1
    if left_key > right_key:   # type: ignore[operator]
        return 1
    return 0
