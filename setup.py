"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works in offline environments without the
``wheel`` package (pip then uses the classic ``setup.py develop`` code path).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="dataspread-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Towards a Holistic Integration of Spreadsheets with "
        "Databases' (DataSpread, ICDE 2018)."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # The engine is pure-Python; NumPy only accelerates the columnar
    # aggregate build (repro.formula.columnar), which falls back to the
    # scalar fold when it is absent.
    install_requires=[],
    extras_require={"columnar": ["numpy>=1.24"]},
)
